package transport

import (
	"fmt"
	"sync"
	"time"

	"plos/internal/compress"
	"plos/internal/obs"
)

// CompressRole tells the Compress wrapper which side of the hello
// negotiation it plays: the client offers its configuration on its hello,
// the server answers with the intersection on the hello reply.
type CompressRole int

const (
	// CompressClient offers on MsgHello and compresses MsgUpdate payloads.
	CompressClient CompressRole = iota
	// CompressServer answers on the hello reply and compresses MsgParams.
	CompressServer
)

// CompressionStats is implemented by compression-wrapped connections: the
// cumulative parameter-payload bytes in dense-equivalent (raw) and encoded
// (comp) form, both directions combined. The protocol layer type-asserts
// it to attribute per-device savings in device-round flight records.
type CompressionStats interface {
	CompStats() (rawBytes, compBytes int64)
}

// Compress layers codec v4 parameter-payload compression over a
// connection. The wrapper is negotiation-complete: a CompressClient
// attaches its offer to the outgoing hello, a CompressServer intersects
// the offer with its own configuration and attaches the answer to the
// hello reply, and only after both ends confirmed does either side start
// compressing (MsgParams server→device, MsgUpdate device→server). A peer
// that never offers — or answers — leaves the connection fully dense and
// bit-identical to codec v3, which is the entire cross-version interop
// story.
//
// Stack order matters: wrap Compress ABOVE Retry,
//
//	conn = transport.Compress(transport.Retry(inner, policy, reg), cfg, role, reg)
//
// so a retried frame is the identical already-compressed message (the
// encoder's error-feedback and delta state advances exactly once per
// logical send) and the peer's sequence-number dedup discards duplicates
// before they could double-advance the decoder's delta references.
//
// A disabled configuration or nil conn returns the conn unchanged.
func Compress(inner Conn, cfg compress.Config, role CompressRole, r *obs.Registry) Conn {
	if inner == nil || !cfg.Enabled() {
		return inner
	}
	return &compConn{
		inner:  inner,
		cfg:    cfg,
		role:   role,
		rawC:   r.Counter(obs.MetricWireRawBytes, ""),
		compC:  r.Counter(obs.MetricWireCompressedBytes, ""),
		ratio:  r.Gauge(obs.MetricWireCompressionRatio, ""),
		efNorm: r.Gauge(obs.MetricQuantErrorFeedbackNorm, ""),
	}
}

type compConn struct {
	inner Conn
	cfg   compress.Config
	role  CompressRole

	// mu guards the negotiation state, codec streams and byte totals. It is
	// never held across inner I/O (a rendezvous transport could otherwise
	// deadlock a concurrent Send/Recv pair).
	mu      sync.Mutex
	active  bool
	pending *compress.Config // server: intersected offer awaiting the reply
	enc     *compress.Encoder
	dec     *compress.Decoder
	raw     int64
	comp    int64

	rawC, compC   *obs.Counter
	ratio, efNorm *obs.Gauge
}

func (c *compConn) activate(neg compress.Config) {
	c.active = true
	c.enc = compress.NewEncoder(neg)
	c.dec = compress.NewDecoder()
}

func (c *compConn) Send(m Message) error {
	c.mu.Lock()
	switch {
	case m.Type == MsgHello && c.role == CompressClient:
		offer := c.cfg
		m.Caps = &offer
	case m.Type == MsgHello && c.role == CompressServer:
		if c.pending != nil {
			answer := *c.pending
			c.pending = nil
			m.Caps = &answer
			if answer.Enabled() {
				c.activate(answer)
			}
		}
	case c.active && c.role == CompressServer && m.Type == MsgParams,
		c.active && c.role == CompressClient && m.Type == MsgUpdate:
		m = c.compressOut(m)
	}
	c.mu.Unlock()
	return c.inner.Send(m)
}

// compressOut moves the message's parameter vectors into a compression
// block, advancing the per-slot streams. Called with mu held.
func (c *compConn) compressOut(m Message) Message {
	cp := &WireComp{}
	raw, comp := int64(0), int64(0)
	encode := func(slot compress.Slot, dense *[]float64, out **compress.Vec) {
		if len(*dense) == 0 {
			return
		}
		v := c.enc.Encode(slot, *dense)
		raw += int64(compress.DenseWireBytes(len(*dense)))
		comp += int64(v.EncodedSize())
		*out = v
		*dense = nil
	}
	encode(compress.SlotW0, &m.W0, &cp.W0)
	encode(compress.SlotU, &m.U, &cp.U)
	encode(compress.SlotW, &m.W, &cp.W)
	encode(compress.SlotV, &m.V, &cp.V)
	if raw == 0 {
		return m // nothing to carry: stay dense (and v3-framed)
	}
	m.Comp = cp
	c.account(raw, comp)
	c.efNorm.Set(c.enc.ResidualNorm())
	return m
}

func (c *compConn) account(raw, comp int64) {
	c.raw += raw
	c.comp += comp
	c.rawC.Add(raw)
	c.compC.Add(comp)
	if c.comp > 0 {
		c.ratio.Set(float64(c.raw) / float64(c.comp))
	}
}

func (c *compConn) Recv() (Message, error) {
	m, err := c.inner.Recv()
	if err != nil {
		return m, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case m.Type == MsgHello && c.role == CompressServer:
		if m.Caps != nil {
			if neg := compress.Intersect(c.cfg, *m.Caps); neg.Enabled() {
				c.pending = &neg
			}
			m.Caps = nil // negotiation is the wrapper's business, not the caller's
		}
	case m.Type == MsgHello && c.role == CompressClient:
		if m.Caps != nil {
			if neg := compress.Intersect(c.cfg, *m.Caps); neg.Enabled() {
				c.activate(neg)
			}
			m.Caps = nil
		}
	case m.Comp != nil:
		if !c.active {
			return Message{}, fmt.Errorf("transport: compressed frame on a connection that never negotiated compression")
		}
		if m, err = c.decompressIn(m); err != nil {
			return Message{}, fmt.Errorf("transport: %w", err)
		}
	}
	return m, nil
}

// decompressIn reconstructs the dense vectors from a compression block,
// advancing the receive-side delta references. Called with mu held.
func (c *compConn) decompressIn(m Message) (Message, error) {
	raw, comp := int64(0), int64(0)
	decode := func(slot compress.Slot, v *compress.Vec, dense *[]float64) error {
		if v == nil {
			return nil
		}
		x, err := c.dec.Decode(slot, v)
		if err != nil {
			return err
		}
		raw += int64(compress.DenseWireBytes(len(x)))
		comp += int64(v.EncodedSize())
		*dense = x
		return nil
	}
	cp := m.Comp
	if err := decode(compress.SlotW0, cp.W0, &m.W0); err != nil {
		return Message{}, err
	}
	if err := decode(compress.SlotU, cp.U, &m.U); err != nil {
		return Message{}, err
	}
	if err := decode(compress.SlotW, cp.W, &m.W); err != nil {
		return Message{}, err
	}
	if err := decode(compress.SlotV, cp.V, &m.V); err != nil {
		return Message{}, err
	}
	m.Comp = nil
	c.account(raw, comp)
	return m, nil
}

// CompStats returns the cumulative dense-equivalent and encoded
// parameter-payload bytes across both directions of this connection.
func (c *compConn) CompStats() (rawBytes, compBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.raw, c.comp
}

// Negotiated reports the connection's active compression state (for tests
// and diagnostics): false until the hello exchange confirmed compression.
func (c *compConn) Negotiated() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.active
}

func (c *compConn) Close() error { return c.inner.Close() }

func (c *compConn) Stats() Stats { return c.inner.Stats() }

// SetOpTimeout forwards the per-op deadline to the wrapped connection.
func (c *compConn) SetOpTimeout(d time.Duration) { SetOpTimeout(c.inner, d) }
