package transport

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"plos/internal/compress"
)

func sampleMessages() []Message {
	return []Message{
		{},
		{Type: MsgHello, Dim: 12, Samples: 40, Labeled: 5},
		{Type: MsgStartRound, Round: 3, W0: []float64{1.5, -2.25, 0, math.Inf(1)}},
		{Type: MsgParams, Round: 7, W0: []float64{0.1}, U: []float64{-0.5, 3}},
		{Type: MsgUpdate, Round: 7, W: []float64{1, 2, 3}, V: []float64{4, 5, 6}, Xi: 0.125},
		{Type: MsgDone, W0: []float64{math.SmallestNonzeroFloat64, math.MaxFloat64}},
		{Type: MsgError, Reason: "device on fire 🔥"},
		{Type: MsgHello, Users: 30, Config: &WireConfig{
			Lambda: 100, Cl: 1, Cu: 0.2, Epsilon: 1e-3, Rho: 1,
			MaxCutIter: 60, QPMaxIter: 5000,
			BalanceGuard: true, WarmWorkingSets: false,
		}},
		{Type: MsgType(-9), Round: -1, Dim: -2, Xi: math.NaN()},
		{Type: MsgHello, Dim: 4, Samples: 9, Session: 0x1122334455667788},
		{Type: MsgUpdate, Round: 2, Seq: 41, W: []float64{0.5}},
		{Type: MsgHello, Users: 8, Config: &WireConfig{
			Lambda: 100, Cl: 1, Cu: 0.2, Epsilon: 1e-3, Rho: 1,
			MaxCutIter: 60, QPMaxIter: 5000, Telemetry: true,
		}},
		{Type: MsgUpdate, Round: 4, W: []float64{1, -2}, Xi: 0.5, Telemetry: &WireTelemetry{
			SolveNS: 1_234_567, QPIters: 88, Cuts: 6, WarmHits: 5, SignFlips: 2,
			MsgsSent: 17, MsgsRecv: 18, BytesSent: 4096, BytesRecv: 8192,
			EnergyJ: 0.0625,
		}},
		{Type: MsgUpdate, Telemetry: &WireTelemetry{SolveNS: -1, EnergyJ: math.NaN()}},
	}
}

// equalMessages compares with NaN-tolerant float comparison (reflect alone
// would fail on the NaN sample).
func equalMessages(a, b Message) bool {
	eqF := func(x, y float64) bool {
		return x == y || (math.IsNaN(x) && math.IsNaN(y))
	}
	eqV := func(x, y []float64) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if !eqF(x[i], y[i]) {
				return false
			}
		}
		return true
	}
	if a.Type != b.Type || a.Round != b.Round || a.Dim != b.Dim ||
		a.Samples != b.Samples || a.Labeled != b.Labeled || a.Users != b.Users ||
		a.Seq != b.Seq || a.Session != b.Session ||
		!eqF(a.Xi, b.Xi) || a.Reason != b.Reason {
		return false
	}
	if !eqV(a.W0, b.W0) || !eqV(a.U, b.U) || !eqV(a.W, b.W) || !eqV(a.V, b.V) {
		return false
	}
	if (a.Config == nil) != (b.Config == nil) {
		return false
	}
	if a.Config != nil && !reflect.DeepEqual(*a.Config, *b.Config) {
		return false
	}
	if (a.Telemetry == nil) != (b.Telemetry == nil) {
		return false
	}
	if a.Telemetry != nil {
		x, y := *a.Telemetry, *b.Telemetry
		if !eqF(x.EnergyJ, y.EnergyJ) {
			return false
		}
		x.EnergyJ, y.EnergyJ = 0, 0
		if x != y {
			return false
		}
	}
	if (a.Caps == nil) != (b.Caps == nil) {
		return false
	}
	if a.Caps != nil {
		if a.Caps.Quant != b.Caps.Quant || a.Caps.Delta != b.Caps.Delta ||
			!eqF(a.Caps.TopK, b.Caps.TopK) {
			return false
		}
	}
	if (a.Comp == nil) != (b.Comp == nil) {
		return false
	}
	if a.Comp != nil {
		// Compressed vectors compare by canonical byte form (NaN-proof and
		// exactly the identity the codec promises).
		eqVec := func(x, y *compress.Vec) bool {
			if (x == nil) != (y == nil) {
				return false
			}
			return x == nil || bytes.Equal(x.AppendTo(nil), y.AppendTo(nil))
		}
		if !eqVec(a.Comp.W0, b.Comp.W0) || !eqVec(a.Comp.U, b.Comp.U) ||
			!eqVec(a.Comp.W, b.Comp.W) || !eqVec(a.Comp.V, b.Comp.V) {
			return false
		}
	}
	return true
}

func TestCodecRoundTrip(t *testing.T) {
	for i, m := range sampleMessages() {
		enc := EncodeMessage(m)
		got, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("message %d: decode: %v", i, err)
		}
		if !equalMessages(m, got) {
			t.Errorf("message %d: round trip mismatch:\n sent %+v\n got  %+v", i, m, got)
		}
		re := EncodeMessage(got)
		if !bytes.Equal(enc, re) {
			t.Errorf("message %d: re-encode differs from original encoding", i)
		}
	}
}

func TestCodecEmptyVectorsDecodeNil(t *testing.T) {
	m := Message{Type: MsgUpdate, W: []float64{}, V: nil}
	got, err := DecodeMessage(EncodeMessage(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.W != nil || got.V != nil {
		t.Errorf("empty vectors should decode to nil, got W=%v V=%v", got.W, got.V)
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	valid := EncodeMessage(sampleMessages()[7]) // the config-carrying hello
	cases := map[string][]byte{
		"empty":             {},
		"bad magic":         append([]byte{'Q'}, valid[1:]...),
		"bad version":       append([]byte{'P', 99}, valid[2:]...),
		"truncated header":  valid[:10],
		"truncated mid-vec": EncodeMessage(Message{W0: []float64{1, 2, 3}})[:100],
		"trailing byte":     append(append([]byte(nil), valid...), 0),
		// Presence byte offset: magic+version (2) + eight i64 (64) + Xi (8) +
		// reason length (4) + four empty vector lengths (16) = 94.
		"presence byte 2":    func() []byte { b := append([]byte(nil), valid...); b[94] = 2; return b }(),
		"huge vector length": append(append([]byte(nil), valid[:2+8*8+8]...), 0xff, 0xff, 0xff, 0xff),
		// The "trailing byte" case above doubles as the telemetry-marker-0
		// rejection: absent telemetry is encoded as zero bytes, so an
		// explicit 0x00 marker is non-canonical.
		"trailing after telemetry": append(append([]byte(nil), EncodeMessage(sampleMessages()[12])...), 0),
		"truncated telemetry":      func() []byte { b := EncodeMessage(sampleMessages()[12]); return b[:len(b)-4] }(),
	}
	for name, data := range cases {
		if _, err := DecodeMessage(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		} else if !errors.Is(err, ErrCodec) {
			t.Errorf("%s: error %v does not wrap ErrCodec", name, err)
		}
	}
}

func TestCodecRejectsOversizedFrame(t *testing.T) {
	if _, err := DecodeMessage(make([]byte, maxFrame+1)); err == nil {
		t.Error("oversized frame accepted")
	}
}

// FuzzMessageRoundTrip drives the codec's two contracts: (1) DecodeMessage
// never panics, whatever the bytes; (2) any input it accepts re-encodes to
// the identical byte string (the canonical-encoding property), and that
// encoding decodes back to an equal Message.
func FuzzMessageRoundTrip(f *testing.F) {
	for _, m := range sampleMessages() {
		f.Add(EncodeMessage(m))
	}
	f.Add([]byte{})
	f.Add([]byte{'P'})
	f.Add([]byte{'P', 1})
	f.Add([]byte("not a frame at all"))
	f.Add(bytes.Repeat([]byte{0xff}, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		re := EncodeMessage(m)
		if !bytes.Equal(data, re) {
			t.Fatalf("decodable input is not canonical:\n in  %x\n out %x", data, re)
		}
		m2, err := DecodeMessage(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if !equalMessages(m, m2) {
			t.Fatalf("decode∘encode∘decode drifted:\n first  %+v\n second %+v", m, m2)
		}
	})
}
