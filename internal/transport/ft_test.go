package transport

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"plos/internal/obs"
)

// noSleep replaces backoff/delay sleeps so fault tests stay fast.
func noSleep(time.Duration) {}

func TestPipeOpTimeout(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	if !SetOpTimeout(a, 10*time.Millisecond) {
		t.Fatal("pipe should accept an op timeout")
	}
	// No peer operation in flight: both directions must time out, and pipe
	// timeouts are transient (nothing was consumed).
	if _, err := a.Recv(); !errors.Is(err, ErrTimeout) {
		t.Errorf("Recv err = %v, want ErrTimeout", err)
	} else if !IsTransient(err) {
		t.Errorf("pipe Recv timeout should be transient: %v", err)
	}
	if err := a.Send(Message{Type: MsgHello}); !errors.Is(err, ErrTimeout) {
		t.Errorf("Send err = %v, want ErrTimeout", err)
	} else if !IsTransient(err) {
		t.Errorf("pipe Send timeout should be transient: %v", err)
	}
	// Clearing the deadline restores blocking semantics; a real exchange
	// still works after timeouts.
	SetOpTimeout(a, 0)
	go func() { _ = b.Send(Message{Type: MsgParams, Round: 7}) }()
	m, err := a.Recv()
	if err != nil || m.Round != 7 {
		t.Fatalf("post-timeout exchange: %v %+v", err, m)
	}
}

func TestTCPOpTimeoutNotTransient(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			done <- c
		}
	}()
	c, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !SetOpTimeout(c, 20*time.Millisecond) {
		t.Fatal("tcp should accept an op timeout")
	}
	_, err = c.Recv()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Recv err = %v, want ErrTimeout", err)
	}
	// A TCP deadline can fire mid-frame and tear the stream, so it must NOT
	// be retried on the same connection.
	if IsTransient(err) {
		t.Errorf("tcp timeout must not be transient: %v", err)
	}
	if srv := <-done; srv != nil {
		_ = srv.Close()
	}
}

func TestFailEvery(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	f := FailEvery(a, 3)
	go func() {
		for {
			if _, err := b.Recv(); err != nil {
				return
			}
		}
	}()
	// Every third operation hiccups transiently; the connection survives.
	for op := 1; op <= 9; op++ {
		err := f.Send(Message{Type: MsgHello})
		if op%3 == 0 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("op %d: err = %v, want ErrInjected", op, err)
			}
			if !IsTransient(err) {
				t.Fatalf("op %d: FailEvery fault must be transient", op)
			}
		} else if err != nil {
			t.Fatalf("op %d: unexpected error %v", op, err)
		}
	}
	_ = f.Close()
}

func TestFailEveryClamp(t *testing.T) {
	a, _ := Pipe()
	defer a.Close()
	f := FailEvery(a, 0) // clamps to 1: every operation fails
	for i := 0; i < 3; i++ {
		err := f.Send(Message{})
		if !errors.Is(err, ErrInjected) || !IsTransient(err) {
			t.Fatalf("op %d: err = %v, want transient ErrInjected", i, err)
		}
	}
}

func TestRetryResendsOnTransient(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	reg := obs.NewRegistry()
	ra := Retry(FailEvery(a, 2), RetryPolicy{MaxAttempts: 3, Seed: 1, Sleep: noSleep}, reg)

	got := make(chan int, 8)
	go func() {
		for {
			m, err := b.Recv()
			if err != nil {
				close(got)
				return
			}
			got <- m.Round
		}
	}()
	// Every second physical op fails; the retry budget absorbs each fault,
	// so all logical sends succeed.
	for i := 1; i <= 3; i++ {
		if err := ra.Send(Message{Type: MsgUpdate, Round: i}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	for i := 1; i <= 3; i++ {
		if r := <-got; r != i {
			t.Fatalf("received round %d, want %d", r, i)
		}
	}
	if n := reg.CounterValue(obs.MetricTransportRetries); n == 0 {
		t.Error("retries counter should have counted the absorbed faults")
	}
	_ = ra.Close()
}

func TestRetryGivesUpOnPermanent(t *testing.T) {
	a, _ := Pipe()
	reg := obs.NewRegistry()
	ra := Retry(FailAfter(a, 0), RetryPolicy{MaxAttempts: 5, Sleep: noSleep}, reg)
	if err := ra.Send(Message{}); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// A permanent failure must pass through on the first occurrence.
	if n := reg.CounterValue(obs.MetricTransportRetries); n != 0 {
		t.Errorf("permanent failure was retried %d times", n)
	}
}

func TestRetryDedupe(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	reg := obs.NewRegistry()
	rb := Retry(b, RetryPolicy{Sleep: noSleep}, reg)
	go func() {
		// A retried send the peer actually received twice, then the next
		// message in sequence.
		_ = a.Send(Message{Type: MsgParams, Seq: 1, Round: 10})
		_ = a.Send(Message{Type: MsgParams, Seq: 1, Round: 10})
		_ = a.Send(Message{Type: MsgParams, Seq: 2, Round: 20})
	}()
	m1, err := rb.Recv()
	if err != nil || m1.Round != 10 {
		t.Fatalf("first recv: %v %+v", err, m1)
	}
	// The duplicate is invisible: the next Recv yields Seq 2 directly.
	m2, err := rb.Recv()
	if err != nil || m2.Round != 20 {
		t.Fatalf("second recv: %v %+v", err, m2)
	}
	if n := reg.CounterValue(obs.MetricTransportDupsDropped); n != 1 {
		t.Errorf("dups dropped = %d, want 1", n)
	}
}

// chaosTrace runs a fixed operation schedule against a freshly seeded chaos
// conn and returns the observable outcome: per-op error strings, the rounds
// that actually arrived at the peer, and the fault count.
func chaosTrace(t *testing.T, seed int64) (errs []string, delivered []int, faults int64) {
	t.Helper()
	a, b := Pipe()
	reg := obs.NewRegistry()
	ca := Chaos(a, ChaosConfig{
		Seed:        seed,
		DropProb:    0.3,
		CorruptProb: 0.15,
		DelayProb:   0.3,
		MaxDelay:    time.Millisecond,
		FlapProb:    0.1,
		Sleep:       noSleep,
	}, reg)
	done := make(chan []int, 1)
	go func() {
		var got []int
		for {
			m, err := b.Recv()
			if err != nil {
				done <- got
				return
			}
			got = append(got, m.Round)
		}
	}()
	for i := 0; i < 40; i++ {
		err := ca.Send(Message{Type: MsgUpdate, Round: i})
		if err == nil {
			errs = append(errs, "")
		} else {
			errs = append(errs, err.Error())
		}
	}
	_ = ca.Close()
	_ = b.Close()
	return errs, <-done, reg.CounterValue(obs.MetricChaosFaults)
}

func TestChaosDeterministic(t *testing.T) {
	errs1, got1, faults1 := chaosTrace(t, 42)
	errs2, got2, faults2 := chaosTrace(t, 42)
	if faults1 == 0 {
		t.Fatal("chaos config injected no faults at all")
	}
	if faults1 != faults2 {
		t.Errorf("fault counts differ across identical runs: %d vs %d", faults1, faults2)
	}
	if fmt.Sprint(errs1) != fmt.Sprint(errs2) {
		t.Errorf("error schedules differ across identical runs")
	}
	if fmt.Sprint(got1) != fmt.Sprint(got2) {
		t.Errorf("delivered sequences differ: %v vs %v", got1, got2)
	}
	// A different seed must produce a different schedule (overwhelmingly).
	errs3, _, _ := chaosTrace(t, 43)
	if fmt.Sprint(errs1) == fmt.Sprint(errs3) {
		t.Error("different seeds produced identical fault schedules")
	}
}

// TestChaosStatsCountLostTraffic is the regression test for the byte-counter
// under-count: Stats sampled below the retry layer missed every frame the
// radio transmitted but the link lost in flight, so retried traffic looked
// free. The chaos conn now counts lost sends at its own boundary.
func TestChaosStatsCountLostTraffic(t *testing.T) {
	a, b := Pipe()
	reg := obs.NewRegistry()
	chaos := Chaos(a, ChaosConfig{Seed: 7, DropProb: 0.4, Sleep: noSleep}, reg)
	sa := Retry(chaos, RetryPolicy{Sleep: noSleep}, reg)
	go func() {
		for {
			if _, err := b.Recv(); err != nil {
				return
			}
		}
	}()
	const n = 25
	msg := Message{Type: MsgUpdate, W: []float64{1, 2, 3}}
	ws := int64(msg.WireSize())
	for i := 0; i < n; i++ {
		msg.Round = i
		if err := sa.Send(msg); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	drops := reg.CounterValue(obs.MetricChaosFaults) // drop-only config
	if drops == 0 {
		t.Fatal("seed injected no drops; the test exercises nothing")
	}
	base, cs := a.Stats(), chaos.Stats()
	if base.MessagesSent != n {
		t.Fatalf("base conn saw %d messages, want %d", base.MessagesSent, n)
	}
	if cs.MessagesSent != n+int(drops) {
		t.Errorf("chaos MessagesSent = %d, want %d delivered + %d lost", cs.MessagesSent, n, drops)
	}
	if cs.BytesSent != base.BytesSent+drops*ws {
		t.Errorf("chaos BytesSent = %d, want %d + %d lost frames × %d bytes",
			cs.BytesSent, base.BytesSent, drops, ws)
	}
	_ = sa.Close()
	_ = b.Close()
}

// Duplicated frames reach the base connection's counters through the
// second inner.Send, so the chaos layer must NOT count them again.
func TestChaosStatsDupsCountedOnce(t *testing.T) {
	a, b := Pipe()
	chaos := Chaos(a, ChaosConfig{Seed: 3, DupProb: 1, Sleep: noSleep}, nil)
	const n = 4
	recvd := make(chan struct{})
	go func() {
		for i := 0; i < 2*n; i++ {
			if _, err := b.Recv(); err != nil {
				return
			}
		}
		close(recvd)
	}()
	for i := 0; i < n; i++ {
		if err := chaos.Send(Message{Type: MsgUpdate, Round: i}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	<-recvd // all async duplicate deliveries have landed
	// The duplicating goroutine bumps the send counter after the rendezvous
	// handoff, so give the counters a moment to settle.
	for i := 0; i < 1000 && a.Stats().MessagesSent != 2*n; i++ {
		time.Sleep(time.Millisecond)
	}
	base, cs := a.Stats(), chaos.Stats()
	if base.MessagesSent != 2*n {
		t.Fatalf("base conn saw %d messages, want %d", base.MessagesSent, 2*n)
	}
	if cs != base {
		t.Errorf("chaos stats %+v diverged from base %+v on dup-only faults", cs, base)
	}
	_ = chaos.Close()
	_ = b.Close()
}

func TestChaosDuplicatesAreDeduped(t *testing.T) {
	a, b := Pipe()
	regS, regR := obs.NewRegistry(), obs.NewRegistry()
	// Every send is duplicated; the receiving Retry layer must hide that.
	sa := Retry(Chaos(a, ChaosConfig{Seed: 5, DupProb: 1, Sleep: noSleep}, regS),
		RetryPolicy{Sleep: noSleep}, regS)
	rb := Retry(b, RetryPolicy{Sleep: noSleep}, regR)
	go func() {
		for i := 1; i <= 3; i++ {
			_ = sa.Send(Message{Type: MsgUpdate, Round: i})
		}
	}()
	for i := 1; i <= 3; i++ {
		m, err := rb.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if m.Round != i {
			t.Fatalf("recv %d: round = %d (duplicate leaked?)", i, m.Round)
		}
	}
	if n := regS.CounterValue(obs.MetricChaosFaults); n != 3 {
		t.Errorf("chaos faults = %d, want 3 duplications", n)
	}
	// Unblock any straggling async duplicate delivery.
	_ = sa.Close()
	_ = rb.Close()
}
