package transport

import (
	"errors"
	"time"
)

// ErrTimeout is wrapped into Send/Recv errors when a per-operation deadline
// expires. Whether a timeout is also transient (safe to retry on the same
// connection) depends on the transport: an in-process pipe times out without
// consuming anything, so its timeouts are transient; a TCP deadline can fire
// mid-frame and leave the byte stream torn, so TCP timeouts are permanent
// and the caller must reconnect instead.
var ErrTimeout = errors.New("transport: operation timed out")

// ErrTransient marks failures that left the connection in a usable state:
// the failed operation can be retried on the same Conn. Test with
// IsTransient; produce with markTransient. Everything not marked transient
// must be treated as fatal for the connection.
var ErrTransient = errors.New("transient")

// IsTransient reports whether err is safe to retry on the same connection.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// transientErr tags err as transient while preserving its message and its
// whole Unwrap chain (so errors.Is still matches ErrTimeout, ErrInjected...).
type transientErr struct{ err error }

func markTransient(err error) error { return &transientErr{err: err} }

func (e *transientErr) Error() string   { return e.err.Error() }
func (e *transientErr) Unwrap() []error { return []error{ErrTransient, e.err} }

// opTimeouter is implemented by connections that support per-operation
// Send/Recv deadlines. Wrappers (Retry, Observe, Chaos, fault injectors)
// forward the call to the connection they wrap.
type opTimeouter interface {
	SetOpTimeout(d time.Duration)
}

// SetOpTimeout applies a per-operation deadline to every subsequent Send and
// Recv on c, when c supports it (TCP and pipe connections do; d <= 0 clears
// the deadline). It reports whether the connection accepted the deadline.
func SetOpTimeout(c Conn, d time.Duration) bool {
	if t, ok := c.(opTimeouter); ok {
		t.SetOpTimeout(d)
		return true
	}
	return false
}
