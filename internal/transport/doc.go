// Package transport provides the message-passing substrate for distributed
// PLOS: a Message vocabulary shared by the server and the user devices, a
// Conn abstraction with per-connection traffic accounting (paper Fig. 13
// reports per-user message overhead in KB), an in-process channel
// implementation for simulation-scale experiments, and a TCP implementation
// speaking a canonical length-prefixed binary codec (codec.go) for real
// deployments (cmd/plos-server, cmd/plos-client).
//
// Only model parameters ever appear in a Message — raw user data has no
// representation in the protocol, which is the privacy property the paper's
// distributed design is built around.
//
// Observe wraps any Conn so that every Send/Recv also feeds the
// transport_* counters and wire-send/wire-recv trace spans of an
// obs.Registry; byte figures come from the connection's own Stats deltas,
// so the observed numbers equal the Fig. 11–13 traffic accounting exactly.
package transport
