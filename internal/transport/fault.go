package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrInjected marks a failure produced by a fault-injection wrapper.
var ErrInjected = errors.New("transport: injected fault")

// faultyConn wraps a Conn with a deterministic operation-count fault model.
// Send and Recv spend from one shared budget; what happens when the budget
// runs out depends on the mode:
//
//   - permanent (every == 0): the conn dies — the inner connection is closed
//     and every further operation fails with ErrInjected. This simulates a
//     device that crashes mid-training (FailAfter, the original behavior).
//   - transient (every > 0): the n-th operation fails with a transient
//     ErrInjected and the budget refills, so every n-th operation hiccups
//     forever. The connection stays usable — this is the fault the Retry
//     wrapper is built to absorb (FailEvery).
type faultyConn struct {
	inner Conn

	mu        sync.Mutex
	remaining int
	every     int
	dead      bool
}

// FailAfter returns a Conn that forwards to inner for the first n combined
// Send/Recv operations and then fails every operation with ErrInjected
// (closing the inner connection on first failure).
func FailAfter(inner Conn, n int) Conn {
	return &faultyConn{inner: inner, remaining: n}
}

// FailEvery returns a Conn whose every n-th combined Send/Recv operation
// fails with a transient ErrInjected; the operation may be retried on the
// same connection. n < 1 is clamped to 1, which fails every operation — use
// n >= 2 for a connection a retry loop can make progress on.
func FailEvery(inner Conn, n int) Conn {
	if n < 1 {
		n = 1
	}
	return &faultyConn{inner: inner, remaining: n - 1, every: n}
}

func (f *faultyConn) spend(op string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return fmt.Errorf("transport: %s: %w", op, ErrInjected)
	}
	if f.remaining <= 0 {
		if f.every > 0 {
			f.remaining = f.every - 1
			return markTransient(fmt.Errorf("transport: %s: %w", op, ErrInjected))
		}
		f.dead = true
		_ = f.inner.Close()
		return fmt.Errorf("transport: %s: %w", op, ErrInjected)
	}
	f.remaining--
	return nil
}

func (f *faultyConn) Send(m Message) error {
	if err := f.spend("Send"); err != nil {
		return err
	}
	return f.inner.Send(m)
}

func (f *faultyConn) Recv() (Message, error) {
	if err := f.spend("Recv"); err != nil {
		return Message{}, err
	}
	return f.inner.Recv()
}

func (f *faultyConn) Close() error { return f.inner.Close() }

func (f *faultyConn) Stats() Stats { return f.inner.Stats() }

// SetOpTimeout forwards the per-op deadline to the wrapped connection.
func (f *faultyConn) SetOpTimeout(d time.Duration) { SetOpTimeout(f.inner, d) }
