package transport

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected marks a failure produced by a fault-injection wrapper.
var ErrInjected = errors.New("transport: injected fault")

// faultyConn wraps a Conn and fails permanently after a fixed number of
// operations, simulating a device that dies mid-training. Used by the
// robustness tests of the protocol's dropout handling.
type faultyConn struct {
	inner Conn

	mu        sync.Mutex
	remaining int
	dead      bool
}

// FailAfter returns a Conn that forwards to inner for the first n combined
// Send/Recv operations and then fails every operation with ErrInjected
// (closing the inner connection on first failure).
func FailAfter(inner Conn, n int) Conn {
	return &faultyConn{inner: inner, remaining: n}
}

func (f *faultyConn) spend(op string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dead {
		return fmt.Errorf("transport: %s: %w", op, ErrInjected)
	}
	if f.remaining <= 0 {
		f.dead = true
		_ = f.inner.Close()
		return fmt.Errorf("transport: %s: %w", op, ErrInjected)
	}
	f.remaining--
	return nil
}

func (f *faultyConn) Send(m Message) error {
	if err := f.spend("Send"); err != nil {
		return err
	}
	return f.inner.Send(m)
}

func (f *faultyConn) Recv() (Message, error) {
	if err := f.spend("Recv"); err != nil {
		return Message{}, err
	}
	return f.inner.Recv()
}

func (f *faultyConn) Close() error { return f.inner.Close() }

func (f *faultyConn) Stats() Stats { return f.inner.Stats() }
