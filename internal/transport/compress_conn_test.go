package transport

import (
	"math"
	"strings"
	"sync"
	"testing"

	"plos/internal/compress"
	"plos/internal/obs"
)

func mustCompCfg(t *testing.T, spec string) compress.Config {
	t.Helper()
	cfg, err := compress.Parse(spec)
	if err != nil {
		t.Fatalf("parse %q: %v", spec, err)
	}
	return cfg
}

// exchange sends m on from while concurrently receiving on to (pipes are
// rendezvous, so a same-goroutine send would deadlock).
func compExchange(t *testing.T, from, to Conn, m Message) Message {
	t.Helper()
	errCh := make(chan error, 1)
	go func() { errCh <- from.Send(m) }()
	got, err := to.Recv()
	if err != nil {
		t.Fatalf("recv: %v", err)
	}
	if err := <-errCh; err != nil {
		t.Fatalf("send: %v", err)
	}
	return got
}

// handshake runs the hello exchange client→server→client, as the protocol
// layer would, and returns the hello the client saw.
func handshake(t *testing.T, client, server Conn) Message {
	t.Helper()
	compExchange(t, client, server, Message{Type: MsgHello, Dim: 8, Samples: 10})
	return compExchange(t, server, client, Message{Type: MsgHello, Users: 1, Dim: 8})
}

func negotiated(c Conn) bool {
	cc, ok := c.(interface{ Negotiated() bool })
	return ok && cc.Negotiated()
}

func TestCompressDisabledReturnsInner(t *testing.T) {
	a, _ := Pipe()
	if got := Compress(a, compress.Config{}, CompressClient, nil); got != a {
		t.Error("disabled config should return the inner conn unchanged")
	}
	if got := Compress(nil, mustCompCfg(t, "q8"), CompressClient, nil); got != nil {
		t.Error("nil conn should stay nil")
	}
}

func TestCompressNegotiationAndRoundTrip(t *testing.T) {
	cfg := mustCompCfg(t, "q8,topk:0.25")
	a, b := Pipe()
	client := Compress(a, cfg, CompressClient, nil)
	server := Compress(b, cfg, CompressServer, nil)

	reply := handshake(t, client, server)
	if reply.Caps != nil {
		t.Error("negotiation block should be consumed by the wrapper, not surfaced")
	}
	if !negotiated(client) || !negotiated(server) {
		t.Fatal("both ends should be active after the hello exchange")
	}

	// Server→client params, client→server update: payloads must arrive
	// dense (Comp stripped) and close to the originals.
	dim := 64
	w0 := make([]float64, dim)
	u := make([]float64, dim)
	for i := range w0 {
		w0[i] = math.Sin(float64(i + 1))
		u[i] = math.Cos(float64(3*i + 2))
	}
	got := compExchange(t, server, client, Message{Type: MsgParams, Round: 1, W0: w0, U: u})
	if got.Comp != nil {
		t.Error("receiver should strip the compression block")
	}
	if len(got.W0) != dim || len(got.U) != dim {
		t.Fatalf("dense payload lengths: W0=%d U=%d, want %d", len(got.W0), len(got.U), dim)
	}
	// Top-k keeps 25% of coordinates per frame; over one frame the received
	// vector is sparse but the kept entries must match to quantization error.
	maxErr := 0.0
	for i := range w0 {
		if got.W0[i] != 0 {
			if e := math.Abs(got.W0[i] - w0[i]); e > maxErr {
				maxErr = e
			}
		}
	}
	if maxErr > 1.0/127.0+1e-12 {
		t.Errorf("kept coordinates drifted beyond q8 step: max err %g", maxErr)
	}

	got = compExchange(t, client, server, Message{Type: MsgUpdate, Round: 1,
		W: w0, V: u, Xi: 0.5})
	if got.Comp != nil || len(got.W) != dim || len(got.V) != dim {
		t.Fatalf("update payload: Comp=%v len(W)=%d len(V)=%d", got.Comp, len(got.W), len(got.V))
	}
	if got.Xi != 0.5 {
		t.Errorf("scalar fields must pass through untouched, Xi=%v", got.Xi)
	}

	// Both directions accounted; q8+topk:0.25 must beat 4x on 64-dim payloads.
	for name, c := range map[string]Conn{"client": client, "server": server} {
		raw, comp := c.(CompressionStats).CompStats()
		if raw != int64(4*compress.DenseWireBytes(dim)) {
			t.Errorf("%s: raw bytes %d, want %d", name, raw, 4*compress.DenseWireBytes(dim))
		}
		if comp <= 0 || float64(raw)/float64(comp) < 4 {
			t.Errorf("%s: ratio %d/%d below 4x", name, raw, comp)
		}
	}
}

// TestCompressDensePeer covers both halves of the interop matrix at the
// transport layer: a compressing node talking to a plain (v3) peer must
// stay fully dense in both directions.
func TestCompressDensePeer(t *testing.T) {
	cfg := mustCompCfg(t, "q16,delta")
	t.Run("v4 client, v3 server", func(t *testing.T) {
		a, b := Pipe()
		client := Compress(a, cfg, CompressClient, nil)
		hello := compExchange(t, client, b, Message{Type: MsgHello, Dim: 4})
		if hello.Caps == nil {
			t.Fatal("client hello should carry the offer")
		}
		// A v3 server echoes a plain hello (it decoded the v4 frame but
		// ignores the caps block it does not understand — here modeled by
		// replying without Caps).
		compExchange(t, b, client, Message{Type: MsgHello, Users: 1})
		if negotiated(client) {
			t.Fatal("client must stay dense without an answer")
		}
		got := compExchange(t, client, b, Message{Type: MsgUpdate, W: []float64{1, 2}})
		if got.Comp != nil || got.Caps != nil || len(got.W) != 2 {
			t.Errorf("update should be dense: %+v", got)
		}
	})
	t.Run("v3 client, v4 server", func(t *testing.T) {
		a, b := Pipe()
		server := Compress(b, cfg, CompressServer, nil)
		compExchange(t, a, server, Message{Type: MsgHello, Dim: 4})
		hello := compExchange(t, server, a, Message{Type: MsgHello, Users: 1})
		if hello.Caps != nil {
			t.Error("server must not answer an offer that never came")
		}
		if negotiated(server) {
			t.Fatal("server must stay dense without an offer")
		}
		got := compExchange(t, server, a, Message{Type: MsgParams, W0: []float64{3, 4}})
		if got.Comp != nil || len(got.W0) != 2 {
			t.Errorf("params should be dense: %+v", got)
		}
	})
}

// TestCompressConfigMismatch: differing configs negotiate down to their
// intersection; disjoint configs fall back to dense.
func TestCompressConfigMismatch(t *testing.T) {
	a, b := Pipe()
	client := Compress(a, mustCompCfg(t, "q8,delta"), CompressClient, nil)
	server := Compress(b, mustCompCfg(t, "q16,delta"), CompressServer, nil)
	handshake(t, client, server)
	// Quant levels differ → quant off; delta on both sides survives.
	if !negotiated(client) || !negotiated(server) {
		t.Fatal("delta∩delta should still negotiate")
	}
	got := compExchange(t, server, client, Message{Type: MsgParams, W0: []float64{1, -1}})
	if len(got.W0) != 2 || got.W0[0] != 1 || got.W0[1] != -1 {
		t.Errorf("delta-only compression must be lossless, got %v", got.W0)
	}

	a2, b2 := Pipe()
	c2 := Compress(a2, mustCompCfg(t, "q8"), CompressClient, nil)
	s2 := Compress(b2, mustCompCfg(t, "q16"), CompressServer, nil)
	reply := handshake(t, c2, s2)
	if negotiated(c2) || negotiated(s2) {
		t.Fatal("disjoint configs must fall back to dense")
	}
	if reply.Caps != nil {
		t.Error("reply caps should not leak to the caller")
	}
}

// TestCompressUnnegotiatedFrameRejected: a compression block arriving on a
// connection that never completed negotiation is a hard error, not a
// silent mis-decode.
func TestCompressUnnegotiatedFrameRejected(t *testing.T) {
	a, b := Pipe()
	server := Compress(b, mustCompCfg(t, "q8"), CompressServer, nil)
	enc := compress.NewEncoder(mustCompCfg(t, "q8"))
	v := enc.Encode(compress.SlotW, []float64{1, 2, 3})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = a.Send(Message{Type: MsgUpdate, Comp: &WireComp{W: v}})
	}()
	_, err := server.Recv()
	wg.Wait()
	if err == nil || !strings.Contains(err.Error(), "never negotiated") {
		t.Fatalf("want un-negotiated-frame error, got %v", err)
	}
}

// TestCompressAboveRetry pins the documented stack order: Compress above
// Retry. Sequence stamping happens below compression, so a compressed
// frame re-sent by the retry layer is byte-identical and the encoder
// state advances exactly once per logical send.
func TestCompressAboveRetry(t *testing.T) {
	cfg := mustCompCfg(t, "q8,topk:0.5,delta")
	a, b := Pipe()
	client := Compress(Retry(a, RetryPolicy{Seed: 1}, nil), cfg, CompressClient, nil)
	server := Compress(Retry(b, RetryPolicy{Seed: 2}, nil), cfg, CompressServer, nil)
	handshake(t, client, server)
	if !negotiated(client) || !negotiated(server) {
		t.Fatal("negotiation must survive the retry layer")
	}
	dim := 32
	for round := 1; round <= 5; round++ {
		w0 := make([]float64, dim)
		for i := range w0 {
			w0[i] = math.Sin(float64(round*dim + i))
		}
		got := compExchange(t, server, client, Message{Type: MsgParams, Round: round, W0: w0})
		if got.Round != round || len(got.W0) != dim || got.Comp != nil {
			t.Fatalf("round %d: bad frame %+v", round, got)
		}
		got = compExchange(t, client, server, Message{Type: MsgUpdate, Round: round, W: w0})
		if got.Round != round || len(got.W) != dim {
			t.Fatalf("round %d: bad update %+v", round, got)
		}
	}
	raw, comp := client.(CompressionStats).CompStats()
	if raw == 0 || comp == 0 || raw <= comp {
		t.Errorf("after 5 rounds: raw=%d comp=%d", raw, comp)
	}
}

func TestCompressMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := mustCompCfg(t, "q8")
	a, b := Pipe()
	client := Compress(a, cfg, CompressClient, reg)
	server := Compress(b, cfg, CompressServer, reg)
	handshake(t, client, server)
	compExchange(t, server, client, Message{Type: MsgParams, W0: []float64{1, 2, 3, 4}})
	rawB := reg.CounterValue(obs.MetricWireRawBytes)
	compB := reg.CounterValue(obs.MetricWireCompressedBytes)
	// Sender and receiver share the registry, so both account the frame.
	if rawB != 2*int64(compress.DenseWireBytes(4)) {
		t.Errorf("raw bytes counter %d, want %d", rawB, 2*compress.DenseWireBytes(4))
	}
	if compB <= 0 || compB >= rawB {
		t.Errorf("compressed bytes counter %d (raw %d)", compB, rawB)
	}
}
