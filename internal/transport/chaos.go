package transport

import (
	"fmt"
	"sync"
	"time"

	"plos/internal/obs"
	"plos/internal/rng"
)

// ChaosConfig configures the deterministic chaos connection. All
// probabilities are per operation; every draw comes from streams split off
// Seed, so a given seed replays the identical fault schedule (for a fixed
// operation order — concurrent Send and Recv share partition state, so
// cross-direction interleaving is the only nondeterminism left).
//
// The fault model is send-side: a "dropped" or "corrupted" message is lost
// before it reaches the wire and surfaces locally as a transient error,
// because a length-prefixed, strictly validated codec turns in-flight
// corruption into frame loss anyway. Duplication delivers the same stamped
// message twice (the peer's Retry wrapper dedupes by Seq). Delay stalls an
// operation without failing it. A flap partitions the link: the next
// PartitionOps operations in both directions fail transiently.
type ChaosConfig struct {
	// Seed keys the fault streams (independent per direction).
	Seed int64
	// DropProb is the chance a Send is silently lost (transient error).
	DropProb float64
	// CorruptProb is the chance a Send is corrupted in flight and discarded
	// by the link layer (transient error, indistinguishable from a drop).
	CorruptProb float64
	// DupProb is the chance a Send is delivered twice.
	DupProb float64
	// DelayProb is the chance an operation is delayed by a uniform fraction
	// of MaxDelay (default 10ms) before proceeding.
	DelayProb float64
	MaxDelay  time.Duration
	// FlapProb is the chance an operation trips a link partition lasting
	// PartitionOps operations (default 3) across both directions.
	FlapProb     float64
	PartitionOps int
	// Sleep replaces time.Sleep in tests; nil means time.Sleep.
	Sleep func(time.Duration)
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.MaxDelay <= 0 {
		c.MaxDelay = 10 * time.Millisecond
	}
	if c.PartitionOps <= 0 {
		c.PartitionOps = 3
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// Chaos wraps inner with the seeded fault injector described by cfg and
// counts every injected fault in the registry (nil registry is fine). Wrap
// Chaos *under* Retry so the retry layer absorbs the injected transients:
//
//	conn = transport.Retry(transport.Chaos(base, chaosCfg, reg), policy, reg)
func Chaos(inner Conn, cfg ChaosConfig, r *obs.Registry) Conn {
	if inner == nil {
		return nil
	}
	cfg = cfg.withDefaults()
	root := rng.New(cfg.Seed)
	return &chaosConn{
		inner:   inner,
		cfg:     cfg,
		sendRng: root.Split("chaos-send"),
		recvRng: root.Split("chaos-recv"),
		faults:  r.Counter(obs.MetricChaosFaults, ""),
	}
}

type chaosConn struct {
	inner Conn
	cfg   ChaosConfig

	// mu guards the per-direction streams and the shared partition state.
	// Fault decisions are made under the lock; the I/O itself is not.
	mu          sync.Mutex
	sendRng     *rng.RNG
	recvRng     *rng.RNG
	partitioned int
	// Traffic transmitted by the radio but lost in flight (drop/corrupt).
	// The retry layer re-sends these frames, so the true cost of the link
	// is inner stats plus the lost traffic; Stats folds it back in.
	lostMsgs  int
	lostBytes int64

	faults *obs.Counter
}

// chaosPlan is one operation's fault decision.
type chaosPlan struct {
	fail  error         // non-nil: fail the op without touching the wire
	lost  bool          // the failed Send was transmitted then lost in flight
	delay time.Duration // sleep before the op
	dup   bool          // send twice (Send only)
}

func (c *chaosConn) plan(op string, g *rng.RNG, sendSide bool) chaosPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.partitioned > 0 {
		c.partitioned--
		c.faults.Inc()
		return chaosPlan{fail: markTransient(fmt.Errorf("transport: %s: partitioned: %w", op, ErrInjected))}
	}
	if c.cfg.FlapProb > 0 && g.Bool(c.cfg.FlapProb) {
		// The tripping operation fails too; the remaining budget covers the
		// next PartitionOps-1 operations in either direction.
		c.partitioned = c.cfg.PartitionOps - 1
		c.faults.Inc()
		return chaosPlan{fail: markTransient(fmt.Errorf("transport: %s: link flap: %w", op, ErrInjected))}
	}
	if sendSide {
		// Drops and corruptions are in-flight losses: the radio transmitted
		// the frame before the link ate it, so the bytes must still show up
		// in Stats (lost=true) even though inner.Send is never called.
		// Partition/flap failures above are different — the radio was down,
		// nothing was transmitted, nothing is counted.
		if c.cfg.DropProb > 0 && g.Bool(c.cfg.DropProb) {
			c.faults.Inc()
			return chaosPlan{fail: markTransient(fmt.Errorf("transport: %s: dropped: %w", op, ErrInjected)), lost: true}
		}
		if c.cfg.CorruptProb > 0 && g.Bool(c.cfg.CorruptProb) {
			c.faults.Inc()
			return chaosPlan{fail: markTransient(fmt.Errorf("transport: %s: corrupted in flight: %w", op, ErrInjected)), lost: true}
		}
	}
	var p chaosPlan
	if sendSide && c.cfg.DupProb > 0 && g.Bool(c.cfg.DupProb) {
		c.faults.Inc()
		p.dup = true
	}
	if c.cfg.DelayProb > 0 && g.Bool(c.cfg.DelayProb) {
		c.faults.Inc()
		p.delay = time.Duration(g.Float64() * float64(c.cfg.MaxDelay))
	}
	return p
}

func (c *chaosConn) Send(m Message) error {
	p := c.plan("Send", c.sendRng, true)
	if p.fail != nil {
		if p.lost {
			c.mu.Lock()
			c.lostMsgs++
			c.lostBytes += int64(m.WireSize())
			c.mu.Unlock()
		}
		return p.fail
	}
	if p.delay > 0 {
		c.cfg.Sleep(p.delay)
	}
	if err := c.inner.Send(m); err != nil {
		return err
	}
	if p.dup {
		// Best-effort second delivery of the identical stamped frame; the
		// peer's dedup discards it, so a failure here is not an error. The
		// delivery is asynchronous because a rendezvous transport (the pipe)
		// would otherwise block this sender until the peer reads the
		// duplicate, deadlocking a strict request/response protocol.
		go func() { _ = c.inner.Send(m) }()
	}
	return nil
}

func (c *chaosConn) Recv() (Message, error) {
	p := c.plan("Recv", c.recvRng, false)
	if p.fail != nil {
		return Message{}, p.fail
	}
	if p.delay > 0 {
		c.cfg.Sleep(p.delay)
	}
	return c.inner.Recv()
}

func (c *chaosConn) Close() error { return c.inner.Close() }

// Stats reports the link's true traffic: what the wrapped connection saw
// plus the frames the radio transmitted that the link lost in flight.
// Sampling only the inner connection under-counted retried traffic — every
// dropped frame the retry layer re-sent was transmitted twice but counted
// once.
func (c *chaosConn) Stats() Stats {
	s := c.inner.Stats()
	c.mu.Lock()
	s.MessagesSent += c.lostMsgs
	s.BytesSent += c.lostBytes
	c.mu.Unlock()
	return s
}

// SetOpTimeout forwards the per-op deadline to the wrapped connection.
func (c *chaosConn) SetOpTimeout(d time.Duration) { SetOpTimeout(c.inner, d) }
