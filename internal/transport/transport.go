package transport

import (
	"errors"
	"fmt"
	"sync"

	"plos/internal/compress"
)

// MsgType enumerates the protocol messages of distributed PLOS.
type MsgType int

const (
	// MsgHello is sent by a client on connect: announces its feature
	// dimension and sample count (metadata only, never samples).
	MsgHello MsgType = iota + 1
	// MsgStartRound starts a CCCP round: carries the current w0 so the
	// device can freeze its effective labels.
	MsgStartRound
	// MsgParams is one ADMM half-round, server to device: carries the
	// consensus z (w0) and the device's scaled dual u_t.
	MsgParams
	// MsgUpdate is the device's reply: its local solution (w_t, v_t, ξ_t).
	MsgUpdate
	// MsgDone ends training: carries the final w0.
	MsgDone
	// MsgError aborts the protocol with a reason.
	MsgError

	// The shard↔aggregator reduce protocol (docs/SHARDING.md) reuses the
	// existing Message fields, so these kinds need no codec change and are
	// invisible to device peers: shards speak them only on their dedicated
	// aggregator connection, negotiated by MsgShardHello in place of the
	// device hello.

	// MsgShardHello opens a shard's aggregator connection: Round is the
	// shard index, Users/Samples the shard's total and live device counts,
	// W/U/Xi the shard's federated-init partials (weighted sum, plain sum,
	// weight total). Labeled=1 marks a checkpoint-restoring shard (the
	// discriminator — codecs need not preserve nil-vs-empty vectors), with
	// W carrying the restored w0 and V the prior objective history.
	// The aggregator's reply carries the global T in Users and the
	// training hyperparameters in Config.
	MsgShardHello
	// MsgShardRound starts CCCP round Round on a shard: carries w0.
	MsgShardRound
	// MsgShardSum is a shard's ADMM partial Σ(x_t+u_t) for iteration
	// Round, with its live participant count in Users.
	MsgShardSum
	// MsgShardZ broadcasts the freshly reduced consensus z for iteration
	// Round back to the shards.
	MsgShardZ
	// MsgShardResid is a shard's post-z partials for iteration Round: the
	// primal-residual partial Σ‖x_t−z‖² in Xi and the objective partial
	// Σ(λ/T·‖v_t‖²+ξ_t) in W[0], with the live count in Users.
	MsgShardResid
	// MsgShardNext advances a shard to ADMM iteration Round of the
	// current CCCP round.
	MsgShardNext
	// MsgShardDone ends a sharded run: carries the final w0.
	MsgShardDone
)

// String implements fmt.Stringer for diagnostics.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgStartRound:
		return "start-round"
	case MsgParams:
		return "params"
	case MsgUpdate:
		return "update"
	case MsgDone:
		return "done"
	case MsgError:
		return "error"
	case MsgShardHello:
		return "shard-hello"
	case MsgShardRound:
		return "shard-round"
	case MsgShardSum:
		return "shard-sum"
	case MsgShardZ:
		return "shard-z"
	case MsgShardResid:
		return "shard-resid"
	case MsgShardNext:
		return "shard-next"
	case MsgShardDone:
		return "shard-done"
	default:
		return fmt.Sprintf("msgtype(%d)", int(t))
	}
}

// Message is the single wire frame of the protocol. Fields are used
// according to Type; unused fields stay zero and cost nothing on the wire
// estimate.
type Message struct {
	Type  MsgType
	Round int
	// Dim, Samples and Labeled are metadata carried by MsgHello (client
	// side); Users is the total user count T announced by the server's
	// hello reply.
	Dim, Samples, Labeled, Users int
	// W0, U, W, V are model parameter vectors.
	W0, U, W, V []float64
	// Xi is the device slack in MsgUpdate.
	Xi float64
	// Seq is a per-connection, per-direction sequence number stamped by the
	// Retry wrapper (retry.go) so the receiving side can drop duplicate
	// deliveries. 0 means the reliability layer is not in use.
	Seq int64
	// Session is the resume token of the fault-tolerance layer: assigned by
	// the server in its hello reply and echoed by a reconnecting client's
	// hello so the server can re-attach the device to its slot. 0 means no
	// session was established.
	Session int64
	// Reason explains a MsgError.
	Reason string
	// Config distributes the training hyperparameters from the server to
	// the devices in the hello reply.
	Config *WireConfig
	// Telemetry is the per-round device telemetry piggyback on MsgUpdate.
	// Attached only when the server's hello reply requested it
	// (WireConfig.Telemetry); nil otherwise, costing nothing on the wire.
	Telemetry *WireTelemetry
	// Caps is the codec v4 compression negotiation block: a client's hello
	// carries its offer, the server's hello reply the intersected answer.
	// Attached by the Compress wrapper; nil on every other message, keeping
	// those frames bit-identical to codec v3.
	Caps *compress.Config
	// Comp carries compressed parameter payloads (codec v4). When a slot is
	// present here the corresponding dense field (W0/U/W/V) is nil; the
	// Compress wrapper reconstructs it on receive, so the protocol layer
	// never sees this field populated.
	Comp *WireComp
}

// WireComp is the compressed form of the four parameter vector slots of a
// message. Slots not carried by the message stay nil.
type WireComp struct {
	W0, U, W, V *compress.Vec
}

// WireConfig is the hyperparameter block the server pushes to devices so a
// deployment is configured in exactly one place.
type WireConfig struct {
	Lambda, Cl, Cu, Epsilon, Rho  float64
	MaxCutIter, QPMaxIter         int
	BalanceGuard, WarmWorkingSets bool
	// Telemetry asks devices to piggyback a WireTelemetry block on every
	// MsgUpdate (set when the server's observer has a flight recorder).
	Telemetry bool
}

// WireTelemetry is the compact per-round telemetry record a device
// piggybacks on its MsgUpdate when the server requested it. It carries only
// durations and counts — never model state — so observation stays passive;
// durations are device-local (no cross-host clock sync is implied).
type WireTelemetry struct {
	// SolveNS is the wall time of this round's local Solve in nanoseconds.
	SolveNS int64
	// QPIters, Cuts and WarmHits are this solve's inner-QP iteration count,
	// cutting-plane rounds, and warm-started QP solves.
	QPIters, Cuts, WarmHits int64
	// SignFlips is the effective-label flip count of the most recent CCCP
	// linearization refresh, reported once (first update after the refresh).
	SignFlips int64
	// MsgsSent/MsgsRecv/BytesSent/BytesRecv are the device's cumulative
	// traffic counters across all its connections.
	MsgsSent, MsgsRecv, BytesSent, BytesRecv int64
	// EnergyJ is the device's cumulative cost-model energy estimate
	// (compute + radio) in joules.
	EnergyJ float64
}

// WireSize returns the deterministic size estimate of the message in bytes:
// an 8-byte header word per scalar field plus 8 bytes per vector element.
// The in-process transport uses it so simulated experiments report the same
// communication volumes regardless of host encoding; the TCP transport
// reports real encoded bytes instead.
func (m Message) WireSize() int {
	const header = 8 * 9 // type, round, dim, samples, labeled, users, seq, session, xi
	size := header + len(m.Reason) + 8*(len(m.W0)+len(m.U)+len(m.W)+len(m.V))
	if m.Config != nil {
		size += 8 * 10
	}
	if m.Telemetry != nil {
		size += 8 * 10
	}
	if m.Caps != nil || m.Comp != nil {
		size++ // codec v4 flags byte
		if m.Caps != nil {
			size += 10
		}
		if m.Comp != nil {
			size++ // slot presence byte
			for _, v := range []*compress.Vec{m.Comp.W0, m.Comp.U, m.Comp.W, m.Comp.V} {
				if v != nil {
					size += v.EncodedSize()
				}
			}
		}
	}
	return size
}

// Stats is a connection's cumulative traffic, as seen from the local side.
type Stats struct {
	MessagesSent, MessagesReceived int
	BytesSent, BytesReceived       int64
}

// Add returns the element-wise sum of two stats (for aggregating across
// connections).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		MessagesSent:     s.MessagesSent + o.MessagesSent,
		MessagesReceived: s.MessagesReceived + o.MessagesReceived,
		BytesSent:        s.BytesSent + o.BytesSent,
		BytesReceived:    s.BytesReceived + o.BytesReceived,
	}
}

// Conn is a bidirectional, message-oriented connection with accounting.
// Implementations must make Send and Recv safe to call from different
// goroutines (one sender, one receiver).
type Conn interface {
	Send(m Message) error
	Recv() (Message, error)
	Close() error
	Stats() Stats
}

// ErrClosed is returned by operations on a closed connection.
var ErrClosed = errors.New("transport: connection closed")

// counter tracks Stats under a mutex; embedded by implementations.
type counter struct {
	mu sync.Mutex
	s  Stats
}

func (c *counter) addSent(bytes int) {
	c.mu.Lock()
	c.s.MessagesSent++
	c.s.BytesSent += int64(bytes)
	c.mu.Unlock()
}

func (c *counter) addReceived(bytes int) {
	c.mu.Lock()
	c.s.MessagesReceived++
	c.s.BytesReceived += int64(bytes)
	c.mu.Unlock()
}

func (c *counter) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s
}
