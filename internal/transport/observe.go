package transport

import (
	"time"

	"plos/internal/obs"
)

// Observe wraps c so every Send/Recv feeds the registry's transport
// counters (messages and bytes per direction) and records one wire span per
// message. Byte counts are taken as deltas of the underlying connection's
// Stats, so TCP connections report real encoded bytes and in-process pipes
// report WireSize — the same numbers Stats() already exposes. user is the
// device index the connection belongs to (-1 for the client side or an
// unidentified peer). A nil registry or nil conn returns c unchanged.
//
// The wrapper relies on the Conn contract (one sender, one receiver): the
// before/after Stats reads around a Send see no concurrent Send, so the
// per-direction delta is exact.
func Observe(c Conn, r *obs.Registry, user int) Conn {
	if c == nil || r == nil {
		return c
	}
	return &observedConn{Conn: c, reg: r, net: r.NetMetrics(), user: user}
}

type observedConn struct {
	Conn
	reg  *obs.Registry
	net  *obs.NetMetrics
	user int
}

func (o *observedConn) Send(m Message) error {
	start := time.Now()
	before := o.Conn.Stats().BytesSent
	err := o.Conn.Send(m)
	if err != nil {
		return err
	}
	bytes := o.Conn.Stats().BytesSent - before
	o.net.MsgsSent.Inc()
	o.net.BytesSent.Add(bytes)
	o.reg.Span(obs.Span{Kind: obs.SpanWireSend, Start: start,
		Dur: time.Since(start), Round: m.Round, User: o.user, Bytes: int(bytes)})
	return nil
}

func (o *observedConn) Recv() (Message, error) {
	start := time.Now()
	before := o.Conn.Stats().BytesReceived
	m, err := o.Conn.Recv()
	if err != nil {
		return m, err
	}
	bytes := o.Conn.Stats().BytesReceived - before
	o.net.MsgsRecv.Inc()
	o.net.BytesRecv.Add(bytes)
	o.reg.Span(obs.Span{Kind: obs.SpanWireRecv, Start: start,
		Dur: time.Since(start), Round: m.Round, User: o.user, Bytes: int(bytes)})
	return m, nil
}
