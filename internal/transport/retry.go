package transport

import (
	"errors"
	"sync"
	"time"

	"plos/internal/obs"
	"plos/internal/rng"
)

// RetryPolicy configures the Retry wrapper: capped exponential backoff with
// multiplicative jitter. The jitter stream is drawn from internal/rng, so a
// given (Seed, failure pattern) always produces the same retry schedule —
// chaos runs are replayable.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries per operation (first try included);
	// 0 selects the default of 3.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles per
	// attempt up to MaxDelay. Defaults: 5ms base, 250ms cap.
	BaseDelay, MaxDelay time.Duration
	// Jitter scales each delay by a uniform factor in [1-Jitter, 1+Jitter]
	// (clamped at 0). 0 selects the default of 0.2; negative disables.
	Jitter float64
	// Seed keys the jitter streams (independent per direction).
	Seed int64
	// Sleep is the delay function, replaceable in tests; nil means
	// time.Sleep.
	Sleep func(time.Duration)
	// Counter, when non-empty, names an additional registry counter
	// incremented alongside transport_retries_total for every retry on this
	// connection (e.g. agg_link_retries_total on shard-aggregator links).
	Counter string
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	} else if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Retry wraps inner with the reliability layer: transient Send/Recv failures
// (see IsTransient) are retried up to the policy's attempt budget with
// seeded, capped exponential backoff; outgoing messages are stamped with a
// per-connection sequence number and incoming duplicates (a retried send the
// peer actually received twice) are discarded by that number. Permanent
// failures pass through unchanged on the first occurrence. A nil registry is
// fine; a nil inner returns nil.
func Retry(inner Conn, p RetryPolicy, r *obs.Registry) Conn {
	if inner == nil {
		return nil
	}
	p = p.withDefaults()
	root := rng.New(p.Seed)
	c := &retryConn{
		inner:    inner,
		p:        p,
		sendRng:  root.Split("retry-send"),
		recvRng:  root.Split("retry-recv"),
		retries:  r.Counter(obs.MetricTransportRetries, ""),
		timeouts: r.Counter(obs.MetricTransportOpTimeouts, ""),
		dups:     r.Counter(obs.MetricTransportDupsDropped, ""),
	}
	if p.Counter != "" {
		c.extra = r.Counter(p.Counter, "")
	}
	return c
}

type retryConn struct {
	inner Conn
	p     RetryPolicy

	sendMu  sync.Mutex
	sendRng *rng.RNG
	seq     int64 // last sequence number stamped on an outgoing message

	recvMu   sync.Mutex
	recvRng  *rng.RNG
	lastSeen int64 // highest sequence number accepted from the peer

	retries, timeouts, dups *obs.Counter
	extra                   *obs.Counter // optional per-link counter (RetryPolicy.Counter)
}

// backoff returns the jittered delay before attempt+1 (attempt counts from 1).
func (c *retryConn) backoff(attempt int, g *rng.RNG) time.Duration {
	d := c.p.BaseDelay
	for i := 1; i < attempt && d < c.p.MaxDelay; i++ {
		d *= 2
	}
	if d > c.p.MaxDelay {
		d = c.p.MaxDelay
	}
	if c.p.Jitter > 0 {
		factor := 1 + c.p.Jitter*(2*g.Float64()-1)
		if factor < 0 {
			factor = 0
		}
		d = time.Duration(float64(d) * factor)
	}
	return d
}

func (c *retryConn) Send(m Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if m.Seq == 0 {
		c.seq++
		m.Seq = c.seq
	}
	for attempt := 1; ; attempt++ {
		err := c.inner.Send(m)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrTimeout) {
			c.timeouts.Inc()
		}
		if !IsTransient(err) || attempt >= c.p.MaxAttempts {
			return err
		}
		c.retries.Inc()
		c.extra.Inc()
		c.p.Sleep(c.backoff(attempt, c.sendRng))
	}
}

func (c *retryConn) Recv() (Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	for attempt := 1; ; {
		m, err := c.inner.Recv()
		if err == nil {
			// A duplicate (an at-least-once delivery of a message we already
			// accepted) is invisible to the caller and consumes no attempt.
			if m.Seq != 0 && m.Seq <= c.lastSeen {
				c.dups.Inc()
				continue
			}
			if m.Seq != 0 {
				c.lastSeen = m.Seq
			}
			return m, nil
		}
		if errors.Is(err, ErrTimeout) {
			c.timeouts.Inc()
		}
		if !IsTransient(err) || attempt >= c.p.MaxAttempts {
			return Message{}, err
		}
		c.retries.Inc()
		c.extra.Inc()
		c.p.Sleep(c.backoff(attempt, c.recvRng))
		attempt++
	}
}

func (c *retryConn) Close() error { return c.inner.Close() }

func (c *retryConn) Stats() Stats { return c.inner.Stats() }

// SetOpTimeout forwards the per-op deadline to the wrapped connection.
func (c *retryConn) SetOpTimeout(d time.Duration) { SetOpTimeout(c.inner, d) }
