package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"plos/internal/compress"
)

// The wire codec is a hand-rolled little-endian binary format chosen over
// gob for three properties the protocol needs:
//
//   - canonical: a Message has exactly one encoding, and every byte string
//     DecodeMessage accepts re-encodes to the identical bytes. The fuzz
//     harness (FuzzMessageRoundTrip) leans on this — corruption anywhere in
//     a frame is either rejected or yields a Message that still round-trips.
//   - self-delimiting and bounded: every length is validated against the
//     remaining input before allocation, so hostile frames cannot make the
//     server allocate unbounded memory.
//   - stable: the byte layout is frozen by codecVersion rather than by Go's
//     type system, so server and clients can be built from different trees.
//
// Layout (all integers little-endian):
//
//	magic 'P' | version | Type i64 | Round i64 | Dim i64 | Samples i64 |
//	Labeled i64 | Users i64 | Seq i64 | Session i64 | Xi f64bits |
//	Reason u32+bytes | W0 vec | U vec | W vec | V vec |
//	Config presence byte [+ config block] [telemetry block]
//
// where vec = u32 count + count f64bits, and the config block is
// Lambda, Cl, Cu, Epsilon, Rho as f64bits, MaxCutIter, QPMaxIter as i64,
// BalanceGuard, WarmWorkingSets, Telemetry as strict 0/1 bytes.
//
// The telemetry block is strictly trailing and only ever present: a frame
// without telemetry simply ends after the config presence byte (or block),
// and one with it carries a 0x01 marker followed by nine i64 words
// (SolveNS, QPIters, Cuts, WarmHits, SignFlips, MsgsSent, MsgsRecv,
// BytesSent, BytesRecv) and EnergyJ as f64bits. A 0x00 marker is rejected —
// the absent encoding is zero bytes, keeping the codec canonical — and a
// peer that never sends telemetry emits frames with no trace of the block.
//
// Version 4 extends the layout for compressed parameter payloads and is
// emitted ONLY for frames that actually carry a negotiation or compression
// block — every other message still encodes as the byte-identical version 3
// above, so a compression-disabled deployment is indistinguishable from a
// v3 one on the wire. A v4 frame replaces everything after the config block
// with:
//
//	flags byte | [telemetry 9×i64 + f64] | [caps block] | [comp block]
//
// flags bit0 = telemetry present, bit1 = caps present, bit2 = comp present;
// other bits are rejected, and a v4 frame with neither caps nor comp is
// rejected too (it would have been encoded as v3 — canonical form). The
// caps block is Quant byte (0/8/16), TopK f64bits, Delta strict 0/1. The
// comp block is a slot presence byte (bit0..3 = W0, U, W, V; higher bits
// rejected) followed by one compress.Vec canonical block per present slot.
//
// Version history: v1 lacked the Seq and Session words (added with the
// fault-tolerance layer); v2 lacked the Telemetry config flag and the
// telemetry block (added with fleet tracing); v3 lacked compression. The
// decoder accepts versions 3 and 4 — a peer built before v4 rejects v4
// frames, which is safe because v4 frames are only ever sent after both
// ends confirmed compression in the hello exchange (see compress_conn.go).
const (
	codecMagic       = byte('P')
	codecVersion     = byte(3)
	codecVersionComp = byte(4)
	// maxFrame bounds a frame (64 MiB): far above any real model exchange,
	// far below anything that could hurt the host.
	maxFrame = 1 << 26

	flagTelemetry = byte(1 << 0)
	flagCaps      = byte(1 << 1)
	flagComp      = byte(1 << 2)
	flagMask      = flagTelemetry | flagCaps | flagComp
)

// CodecVersionBase and CodecVersionCompressed export the wire codec
// versions this build speaks, for build-identity surfaces (the
// plos_build_info gauge). The codec itself keeps using the private bytes.
const (
	CodecVersionBase       = int(codecVersion)
	CodecVersionCompressed = int(codecVersionComp)
)

// ErrCodec wraps every malformed-frame error from DecodeMessage.
var ErrCodec = errors.New("transport: malformed frame")

// EncodeMessage serializes m into the canonical wire form.
func EncodeMessage(m Message) []byte {
	version := codecVersion
	if m.Caps != nil || m.Comp != nil {
		version = codecVersionComp
	}
	buf := make([]byte, 0, 2+9*8+4+len(m.Reason)+4*4+8*(len(m.W0)+len(m.U)+len(m.W)+len(m.V))+1)
	buf = append(buf, codecMagic, version)
	for _, v := range []int64{int64(m.Type), int64(m.Round), int64(m.Dim),
		int64(m.Samples), int64(m.Labeled), int64(m.Users), m.Seq, m.Session} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Xi))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Reason)))
	buf = append(buf, m.Reason...)
	for _, vec := range [][]float64{m.W0, m.U, m.W, m.V} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(vec)))
		for _, v := range vec {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	if m.Config == nil {
		buf = append(buf, 0)
	} else {
		buf = append(buf, 1)
		c := m.Config
		for _, v := range []float64{c.Lambda, c.Cl, c.Cu, c.Epsilon, c.Rho} {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(c.MaxCutIter)))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(c.QPMaxIter)))
		buf = append(buf, boolByte(c.BalanceGuard), boolByte(c.WarmWorkingSets), boolByte(c.Telemetry))
	}
	if version == codecVersion {
		if t := m.Telemetry; t != nil {
			buf = append(buf, 1)
			buf = appendTelemetry(buf, t)
		}
		return buf
	}
	flags := byte(0)
	if m.Telemetry != nil {
		flags |= flagTelemetry
	}
	if m.Caps != nil {
		flags |= flagCaps
	}
	if m.Comp != nil {
		flags |= flagComp
	}
	buf = append(buf, flags)
	if m.Telemetry != nil {
		buf = appendTelemetry(buf, m.Telemetry)
	}
	if c := m.Caps; c != nil {
		buf = append(buf, c.Quant)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.TopK))
		buf = append(buf, boolByte(c.Delta))
	}
	if cp := m.Comp; cp != nil {
		slots := [4]*compress.Vec{cp.W0, cp.U, cp.W, cp.V}
		present := byte(0)
		for i, v := range slots {
			if v != nil {
				present |= 1 << i
			}
		}
		buf = append(buf, present)
		for _, v := range slots {
			if v != nil {
				buf = v.AppendTo(buf)
			}
		}
	}
	return buf
}

func appendTelemetry(buf []byte, t *WireTelemetry) []byte {
	for _, v := range []int64{t.SolveNS, t.QPIters, t.Cuts, t.WarmHits,
		t.SignFlips, t.MsgsSent, t.MsgsRecv, t.BytesSent, t.BytesRecv} {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	}
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.EnergyJ))
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// decoder walks a frame with bounds checking; every take* fails cleanly at
// the end of input instead of panicking.
type decoder struct {
	data []byte
	off  int
}

func (d *decoder) remaining() int { return len(d.data) - d.off }

func (d *decoder) takeByte() (byte, error) {
	if d.remaining() < 1 {
		return 0, fmt.Errorf("%w: truncated at byte %d", ErrCodec, d.off)
	}
	b := d.data[d.off]
	d.off++
	return b, nil
}

func (d *decoder) takeU64() (uint64, error) {
	if d.remaining() < 8 {
		return 0, fmt.Errorf("%w: truncated at byte %d", ErrCodec, d.off)
	}
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) takeU32() (uint32, error) {
	if d.remaining() < 4 {
		return 0, fmt.Errorf("%w: truncated at byte %d", ErrCodec, d.off)
	}
	v := binary.LittleEndian.Uint32(d.data[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) takeI64() (int64, error) {
	v, err := d.takeU64()
	return int64(v), err
}

func (d *decoder) takeF64() (float64, error) {
	v, err := d.takeU64()
	return math.Float64frombits(v), err
}

func (d *decoder) takeVec() ([]float64, error) {
	n, err := d.takeU32()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if int(n) > d.remaining()/8 {
		return nil, fmt.Errorf("%w: vector length %d exceeds remaining %d bytes", ErrCodec, n, d.remaining())
	}
	vec := make([]float64, n)
	for i := range vec {
		vec[i], _ = d.takeF64()
	}
	return vec, nil
}

// DecodeMessage parses one canonical frame. It never panics on corrupt
// input, rejects trailing bytes, and accepts exactly the strings
// EncodeMessage emits (so decode∘encode is the identity both ways).
func DecodeMessage(data []byte) (Message, error) {
	if len(data) > maxFrame {
		return Message{}, fmt.Errorf("%w: frame of %d bytes exceeds limit %d", ErrCodec, len(data), maxFrame)
	}
	d := &decoder{data: data}
	magic, err := d.takeByte()
	if err != nil {
		return Message{}, err
	}
	if magic != codecMagic {
		return Message{}, fmt.Errorf("%w: bad magic 0x%02x", ErrCodec, magic)
	}
	version, err := d.takeByte()
	if err != nil {
		return Message{}, err
	}
	if version != codecVersion && version != codecVersionComp {
		return Message{}, fmt.Errorf("%w: unsupported version %d", ErrCodec, version)
	}
	var m Message
	ints := make([]int64, 8)
	for i := range ints {
		if ints[i], err = d.takeI64(); err != nil {
			return Message{}, err
		}
	}
	m.Type = MsgType(ints[0])
	m.Round = int(ints[1])
	m.Dim = int(ints[2])
	m.Samples = int(ints[3])
	m.Labeled = int(ints[4])
	m.Users = int(ints[5])
	m.Seq = ints[6]
	m.Session = ints[7]
	if m.Xi, err = d.takeF64(); err != nil {
		return Message{}, err
	}
	rlen, err := d.takeU32()
	if err != nil {
		return Message{}, err
	}
	if int(rlen) > d.remaining() {
		return Message{}, fmt.Errorf("%w: reason length %d exceeds remaining %d bytes", ErrCodec, rlen, d.remaining())
	}
	m.Reason = string(d.data[d.off : d.off+int(rlen)])
	d.off += int(rlen)
	for _, dst := range []*[]float64{&m.W0, &m.U, &m.W, &m.V} {
		if *dst, err = d.takeVec(); err != nil {
			return Message{}, err
		}
	}
	present, err := d.takeByte()
	if err != nil {
		return Message{}, err
	}
	switch present {
	case 0:
	case 1:
		var c WireConfig
		fs := []*float64{&c.Lambda, &c.Cl, &c.Cu, &c.Epsilon, &c.Rho}
		for _, f := range fs {
			if *f, err = d.takeF64(); err != nil {
				return Message{}, err
			}
		}
		var mi, qi int64
		if mi, err = d.takeI64(); err != nil {
			return Message{}, err
		}
		if qi, err = d.takeI64(); err != nil {
			return Message{}, err
		}
		c.MaxCutIter, c.QPMaxIter = int(mi), int(qi)
		for _, b := range []*bool{&c.BalanceGuard, &c.WarmWorkingSets, &c.Telemetry} {
			raw, err := d.takeByte()
			if err != nil {
				return Message{}, err
			}
			// Strict 0/1 keeps the encoding canonical: a 2 would decode to
			// true but re-encode as 1, breaking the round-trip identity.
			if raw > 1 {
				return Message{}, fmt.Errorf("%w: bool byte 0x%02x", ErrCodec, raw)
			}
			*b = raw == 1
		}
		m.Config = &c
	default:
		return Message{}, fmt.Errorf("%w: config presence byte 0x%02x", ErrCodec, present)
	}
	if version == codecVersion {
		if d.remaining() > 0 {
			marker, err := d.takeByte()
			if err != nil {
				return Message{}, err
			}
			// Only 0x01 is valid: absent telemetry is encoded as zero bytes,
			// so accepting a 0x00 marker would break the round-trip identity.
			if marker != 1 {
				return Message{}, fmt.Errorf("%w: telemetry marker 0x%02x", ErrCodec, marker)
			}
			if m.Telemetry, err = d.takeTelemetry(); err != nil {
				return Message{}, err
			}
		}
	} else {
		flags, err := d.takeByte()
		if err != nil {
			return Message{}, err
		}
		if flags&^flagMask != 0 {
			return Message{}, fmt.Errorf("%w: unknown flag bits 0x%02x", ErrCodec, flags)
		}
		// A v4 frame without caps or comp would have been encoded as v3:
		// rejecting it keeps the encoding canonical.
		if flags&(flagCaps|flagComp) == 0 {
			return Message{}, fmt.Errorf("%w: v4 frame without caps or compression block", ErrCodec)
		}
		if flags&flagTelemetry != 0 {
			if m.Telemetry, err = d.takeTelemetry(); err != nil {
				return Message{}, err
			}
		}
		if flags&flagCaps != 0 {
			var c compress.Config
			if c.Quant, err = d.takeByte(); err != nil {
				return Message{}, err
			}
			if c.Quant != 0 && c.Quant != 8 && c.Quant != 16 {
				return Message{}, fmt.Errorf("%w: caps quantization width %d", ErrCodec, c.Quant)
			}
			if c.TopK, err = d.takeF64(); err != nil {
				return Message{}, err
			}
			raw, err := d.takeByte()
			if err != nil {
				return Message{}, err
			}
			if raw > 1 {
				return Message{}, fmt.Errorf("%w: bool byte 0x%02x", ErrCodec, raw)
			}
			c.Delta = raw == 1
			m.Caps = &c
		}
		if flags&flagComp != 0 {
			present, err := d.takeByte()
			if err != nil {
				return Message{}, err
			}
			if present&^0x0f != 0 {
				return Message{}, fmt.Errorf("%w: compression slot byte 0x%02x", ErrCodec, present)
			}
			var cp WireComp
			for i, dst := range []**compress.Vec{&cp.W0, &cp.U, &cp.W, &cp.V} {
				if present&(1<<i) == 0 {
					continue
				}
				v, n, err := compress.UnmarshalVec(d.data[d.off:])
				if err != nil {
					return Message{}, fmt.Errorf("%w: slot %d: %v", ErrCodec, i, err)
				}
				d.off += n
				*dst = v
			}
			m.Comp = &cp
		}
	}
	if d.remaining() != 0 {
		return Message{}, fmt.Errorf("%w: %d trailing bytes", ErrCodec, d.remaining())
	}
	return m, nil
}

func (d *decoder) takeTelemetry() (*WireTelemetry, error) {
	var t WireTelemetry
	var err error
	for _, dst := range []*int64{&t.SolveNS, &t.QPIters, &t.Cuts, &t.WarmHits,
		&t.SignFlips, &t.MsgsSent, &t.MsgsRecv, &t.BytesSent, &t.BytesRecv} {
		if *dst, err = d.takeI64(); err != nil {
			return nil, err
		}
	}
	if t.EnergyJ, err = d.takeF64(); err != nil {
		return nil, err
	}
	return &t, nil
}
