package transport

import (
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func TestMsgTypeString(t *testing.T) {
	tests := []struct {
		mt   MsgType
		want string
	}{
		{MsgHello, "hello"}, {MsgStartRound, "start-round"}, {MsgParams, "params"},
		{MsgUpdate, "update"}, {MsgDone, "done"}, {MsgError, "error"},
		{MsgType(99), "msgtype(99)"},
	}
	for _, tc := range tests {
		if got := tc.mt.String(); got != tc.want {
			t.Errorf("String(%d) = %q, want %q", int(tc.mt), got, tc.want)
		}
	}
}

func TestWireSize(t *testing.T) {
	m := Message{Type: MsgParams, W0: make([]float64, 10), U: make([]float64, 10)}
	if got := m.WireSize(); got != 72+160 {
		t.Errorf("WireSize = %d, want 232", got)
	}
	empty := Message{Type: MsgDone}
	if empty.WireSize() != 72 {
		t.Errorf("empty WireSize = %d", empty.WireSize())
	}
	withCfg := Message{Type: MsgHello, Config: &WireConfig{}}
	if withCfg.WireSize() != 72+80 {
		t.Errorf("config WireSize = %d", withCfg.WireSize())
	}
	withTel := Message{Type: MsgUpdate, Telemetry: &WireTelemetry{}}
	if withTel.WireSize() != 72+80 {
		t.Errorf("telemetry WireSize = %d", withTel.WireSize())
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{MessagesSent: 1, MessagesReceived: 2, BytesSent: 10, BytesReceived: 20}
	b := Stats{MessagesSent: 3, MessagesReceived: 4, BytesSent: 30, BytesReceived: 40}
	got := a.Add(b)
	want := Stats{MessagesSent: 4, MessagesReceived: 6, BytesSent: 40, BytesReceived: 60}
	if got != want {
		t.Errorf("Add = %+v", got)
	}
}

func exchange(t *testing.T, a, b Conn) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m, err := b.Recv()
		if err != nil {
			t.Errorf("Recv: %v", err)
			return
		}
		if m.Type != MsgParams || len(m.W0) != 3 || m.W0[1] != 2 {
			t.Errorf("got %+v", m)
		}
		if err := b.Send(Message{Type: MsgUpdate, W: []float64{9}}); err != nil {
			t.Errorf("Send reply: %v", err)
		}
	}()
	if err := a.Send(Message{Type: MsgParams, W0: []float64{1, 2, 3}}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	reply, err := a.Recv()
	if err != nil {
		t.Fatalf("Recv reply: %v", err)
	}
	if reply.Type != MsgUpdate || reply.W[0] != 9 {
		t.Fatalf("reply = %+v", reply)
	}
	wg.Wait()
}

func TestPipeExchangeAndStats(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	exchange(t, a, b)
	as, bs := a.Stats(), b.Stats()
	if as.MessagesSent != 1 || as.MessagesReceived != 1 {
		t.Errorf("a stats = %+v", as)
	}
	if as.BytesSent != bs.BytesReceived || as.BytesReceived != bs.BytesSent {
		t.Errorf("asymmetric accounting: %+v vs %+v", as, bs)
	}
	wantSent := Message{Type: MsgParams, W0: []float64{1, 2, 3}}.WireSize()
	if as.BytesSent != int64(wantSent) {
		t.Errorf("BytesSent = %d, want %d", as.BytesSent, wantSent)
	}
}

func TestPipeCloseUnblocksPeer(t *testing.T) {
	a, b := Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrClosed) {
		t.Errorf("Recv after peer close = %v, want ErrClosed", err)
	}
	if err := b.Send(Message{Type: MsgDone}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send after peer close = %v, want ErrClosed", err)
	}
	// Closing twice is fine.
	if err := a.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestPipeSelfCloseErrors(t *testing.T) {
	a, _ := Pipe()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(Message{}); !errors.Is(err, ErrClosed) {
		t.Errorf("Send on closed = %v", err)
	}
	if _, err := a.Recv(); !errors.Is(err, ErrClosed) {
		t.Errorf("Recv on closed = %v", err)
	}
}

func TestTCPExchangeAndStats(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	var serverConn Conn
	accepted := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		serverConn = c
		accepted <- err
	}()
	client, err := Dial(l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer client.Close()
	if err := <-accepted; err != nil {
		t.Fatalf("Accept: %v", err)
	}
	defer serverConn.Close()

	exchange(t, client, serverConn)
	cs := client.Stats()
	if cs.MessagesSent != 1 || cs.MessagesReceived != 1 {
		t.Errorf("client stats = %+v", cs)
	}
	if cs.BytesSent <= 0 || cs.BytesReceived <= 0 {
		t.Errorf("TCP byte accounting missing: %+v", cs)
	}
}

func TestTCPRecvAfterPeerClose(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			_ = c.Close()
		}
	}()
	client, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Recv(); err == nil {
		t.Error("Recv from closed peer should error")
	}
}

func TestAcceptN(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const n = 3
	clients := make([]Conn, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(l.Addr())
			if err != nil {
				t.Errorf("Dial %d: %v", i, err)
				return
			}
			clients[i] = c
		}(i)
	}
	conns, err := l.AcceptN(n)
	if err != nil {
		t.Fatalf("AcceptN: %v", err)
	}
	wg.Wait()
	if len(conns) != n {
		t.Fatalf("got %d conns", len(conns))
	}
	for _, c := range conns {
		_ = c.Close()
	}
	for _, c := range clients {
		if c != nil {
			_ = c.Close()
		}
	}
}

func TestFailAfter(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	faulty := FailAfter(a, 2)
	go func() {
		for {
			if _, err := b.Recv(); err != nil {
				return
			}
		}
	}()
	if err := faulty.Send(Message{Type: MsgHello}); err != nil {
		t.Fatalf("first Send: %v", err)
	}
	if err := faulty.Send(Message{Type: MsgHello}); err != nil {
		t.Fatalf("second Send: %v", err)
	}
	if err := faulty.Send(Message{Type: MsgHello}); !errors.Is(err, ErrInjected) {
		t.Errorf("third Send = %v, want ErrInjected", err)
	}
	if _, err := faulty.Recv(); !errors.Is(err, ErrInjected) {
		t.Errorf("Recv after death = %v, want ErrInjected", err)
	}
	if faulty.Stats().MessagesSent != 2 {
		t.Errorf("stats = %+v", faulty.Stats())
	}
}

// Property: pipe transports arbitrary vector payloads losslessly and
// accounts symmetric byte counts.
func TestPropertyPipeLossless(t *testing.T) {
	f := func(w0 []float64, xi float64, round int) bool {
		if len(w0) > 256 {
			w0 = w0[:256]
		}
		a, b := Pipe()
		defer a.Close()
		defer b.Close()
		sent := Message{Type: MsgUpdate, Round: round, W0: w0, Xi: xi}
		var got Message
		var recvErr error
		done := make(chan struct{})
		go func() {
			got, recvErr = b.Recv()
			close(done)
		}()
		if err := a.Send(sent); err != nil {
			return false
		}
		<-done
		if recvErr != nil {
			return false
		}
		if got.Round != sent.Round || got.Xi != sent.Xi || len(got.W0) != len(sent.W0) {
			return false
		}
		for i := range got.W0 {
			if got.W0[i] != sent.W0[i] {
				return false
			}
		}
		return a.Stats().BytesSent == b.Stats().BytesReceived
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dialing a closed port should error")
	}
}

func TestListenFailure(t *testing.T) {
	if _, err := Listen("256.256.256.256:99999"); err == nil {
		t.Error("invalid address should error")
	}
}

func TestTCPDoubleClose(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			_ = c.Close()
		}
	}()
	client, err := Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := client.Close(); err != nil {
		t.Fatalf("second Close should repeat the first result: %v", err)
	}
}

func TestFailAfterClose(t *testing.T) {
	a, b := Pipe()
	defer b.Close()
	f := FailAfter(a, 10)
	if err := f.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}
