package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// tcpConn adapts a net.Conn to the Conn interface with the canonical binary
// codec (see codec.go) behind a 4-byte little-endian length prefix, and real
// on-the-wire byte accounting (prefix included).
type tcpConn struct {
	counter
	nc net.Conn

	sendMu    sync.Mutex
	recvMu    sync.Mutex
	closeOnce sync.Once
	closeErr  error
	// opTimeout, when positive, bounds each Send/Recv via net deadlines.
	// A TCP deadline can expire mid-frame, leaving the stream torn, so
	// timeouts here are fatal (wrapped ErrTimeout, NOT transient): the
	// caller must reconnect rather than retry on the same conn.
	opTimeout atomic.Int64
}

// SetOpTimeout bounds every subsequent Send/Recv to d (d <= 0 clears it).
func (t *tcpConn) SetOpTimeout(d time.Duration) { t.opTimeout.Store(int64(d)) }

// mapIOErr normalizes the error of a raw read/write: peer hangups become
// ErrClosed, expired deadlines become ErrTimeout, anything else passes
// through.
func mapIOErr(op string, err error) error {
	if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return fmt.Errorf("transport: %s: %w", op, ErrClosed)
	}
	if errors.Is(err, os.ErrDeadlineExceeded) {
		return fmt.Errorf("transport: %s: %w", op, ErrTimeout)
	}
	return fmt.Errorf("transport: %s: %w", op, err)
}

// NewTCPConn wraps an established net.Conn. The caller keeps ownership of
// dialing/accepting; Dial and the Listener helpers below cover the common
// cases.
func NewTCPConn(nc net.Conn) Conn {
	return &tcpConn{nc: nc}
}

// Dial connects to a PLOS server at addr ("host:port").
func Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: Dial %s: %w", addr, err)
	}
	return NewTCPConn(nc), nil
}

func (t *tcpConn) Send(m Message) error {
	payload := EncodeMessage(m)
	if len(payload) > maxFrame {
		return fmt.Errorf("transport: Send: frame of %d bytes exceeds limit %d", len(payload), maxFrame)
	}
	frame := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	if d := time.Duration(t.opTimeout.Load()); d > 0 {
		_ = t.nc.SetWriteDeadline(time.Now().Add(d))
	} else {
		_ = t.nc.SetWriteDeadline(time.Time{})
	}
	if _, err := t.nc.Write(frame); err != nil {
		return mapIOErr("Send", err)
	}
	t.addSent(len(frame))
	return nil
}

func (t *tcpConn) Recv() (Message, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	if d := time.Duration(t.opTimeout.Load()); d > 0 {
		_ = t.nc.SetReadDeadline(time.Now().Add(d))
	} else {
		_ = t.nc.SetReadDeadline(time.Time{})
	}
	var hdr [4]byte
	if _, err := io.ReadFull(t.nc, hdr[:]); err != nil {
		// EOF cleanly between frames is the peer hanging up; inside a
		// header it is a torn frame.
		return Message{}, mapIOErr("Recv", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return Message{}, fmt.Errorf("transport: Recv: %w: frame of %d bytes exceeds limit %d", ErrCodec, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(t.nc, payload); err != nil {
		return Message{}, mapIOErr("Recv: torn frame", err)
	}
	m, err := DecodeMessage(payload)
	if err != nil {
		return Message{}, fmt.Errorf("transport: Recv: %w", err)
	}
	t.addReceived(4 + len(payload))
	return m, nil
}

func (t *tcpConn) Close() error {
	t.closeOnce.Do(func() { t.closeErr = t.nc.Close() })
	return t.closeErr
}

// Listener accepts PLOS protocol connections.
type Listener struct {
	l net.Listener
}

// Listen starts a TCP listener on addr (":0" picks an ephemeral port).
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: Listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address (useful with ":0").
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for the next client connection.
func (l *Listener) Accept() (Conn, error) {
	nc, err := l.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: Accept: %w", err)
	}
	return NewTCPConn(nc), nil
}

// AcceptN collects exactly n client connections.
func (l *Listener) AcceptN(n int) ([]Conn, error) {
	conns := make([]Conn, 0, n)
	for len(conns) < n {
		c, err := l.Accept()
		if err != nil {
			for _, open := range conns {
				_ = open.Close()
			}
			return nil, err
		}
		conns = append(conns, c)
	}
	return conns, nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }
