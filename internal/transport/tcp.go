package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// tcpConn adapts a net.Conn to the Conn interface with the canonical binary
// codec (see codec.go) behind a 4-byte little-endian length prefix, and real
// on-the-wire byte accounting (prefix included).
type tcpConn struct {
	counter
	nc net.Conn

	sendMu    sync.Mutex
	recvMu    sync.Mutex
	closeOnce sync.Once
	closeErr  error
}

// NewTCPConn wraps an established net.Conn. The caller keeps ownership of
// dialing/accepting; Dial and the Listener helpers below cover the common
// cases.
func NewTCPConn(nc net.Conn) Conn {
	return &tcpConn{nc: nc}
}

// Dial connects to a PLOS server at addr ("host:port").
func Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: Dial %s: %w", addr, err)
	}
	return NewTCPConn(nc), nil
}

func (t *tcpConn) Send(m Message) error {
	payload := EncodeMessage(m)
	if len(payload) > maxFrame {
		return fmt.Errorf("transport: Send: frame of %d bytes exceeds limit %d", len(payload), maxFrame)
	}
	frame := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	if _, err := t.nc.Write(frame); err != nil {
		return fmt.Errorf("transport: Send: %w", err)
	}
	t.addSent(len(frame))
	return nil
}

func (t *tcpConn) Recv() (Message, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(t.nc, hdr[:]); err != nil {
		// EOF cleanly between frames is the peer hanging up; inside a
		// header it is a torn frame.
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
			return Message{}, fmt.Errorf("transport: Recv: %w", ErrClosed)
		}
		return Message{}, fmt.Errorf("transport: Recv: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return Message{}, fmt.Errorf("transport: Recv: %w: frame of %d bytes exceeds limit %d", ErrCodec, n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(t.nc, payload); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
			return Message{}, fmt.Errorf("transport: Recv: torn frame: %w", ErrClosed)
		}
		return Message{}, fmt.Errorf("transport: Recv: %w", err)
	}
	m, err := DecodeMessage(payload)
	if err != nil {
		return Message{}, fmt.Errorf("transport: Recv: %w", err)
	}
	t.addReceived(4 + len(payload))
	return m, nil
}

func (t *tcpConn) Close() error {
	t.closeOnce.Do(func() { t.closeErr = t.nc.Close() })
	return t.closeErr
}

// Listener accepts PLOS protocol connections.
type Listener struct {
	l net.Listener
}

// Listen starts a TCP listener on addr (":0" picks an ephemeral port).
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: Listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address (useful with ":0").
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for the next client connection.
func (l *Listener) Accept() (Conn, error) {
	nc, err := l.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: Accept: %w", err)
	}
	return NewTCPConn(nc), nil
}

// AcceptN collects exactly n client connections.
func (l *Listener) AcceptN(n int) ([]Conn, error) {
	conns := make([]Conn, 0, n)
	for len(conns) < n {
		c, err := l.Accept()
		if err != nil {
			for _, open := range conns {
				_ = open.Close()
			}
			return nil, err
		}
		conns = append(conns, c)
	}
	return conns, nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }
