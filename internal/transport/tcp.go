package transport

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
)

// tcpConn adapts a net.Conn to the Conn interface using gob encoding, with
// real on-the-wire byte accounting via counting reader/writer wrappers.
type tcpConn struct {
	counter
	nc  net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	cw  *countingWriter
	cr  *countingReader

	sendMu    sync.Mutex
	closeOnce sync.Once
	closeErr  error
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// NewTCPConn wraps an established net.Conn. The caller keeps ownership of
// dialing/accepting; Dial and the Listener helpers below cover the common
// cases.
func NewTCPConn(nc net.Conn) Conn {
	cw := &countingWriter{w: nc}
	cr := &countingReader{r: nc}
	return &tcpConn{
		nc:  nc,
		enc: gob.NewEncoder(cw),
		dec: gob.NewDecoder(cr),
		cw:  cw,
		cr:  cr,
	}
}

// Dial connects to a PLOS server at addr ("host:port").
func Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: Dial %s: %w", addr, err)
	}
	return NewTCPConn(nc), nil
}

func (t *tcpConn) Send(m Message) error {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	before := t.cw.n
	if err := t.enc.Encode(m); err != nil {
		return fmt.Errorf("transport: Send: %w", err)
	}
	t.mu.Lock()
	t.s.MessagesSent++
	t.s.BytesSent += t.cw.n - before
	t.mu.Unlock()
	return nil
}

func (t *tcpConn) Recv() (Message, error) {
	var m Message
	before := t.cr.n
	if err := t.dec.Decode(&m); err != nil {
		if err == io.EOF {
			return Message{}, fmt.Errorf("transport: Recv: %w", ErrClosed)
		}
		return Message{}, fmt.Errorf("transport: Recv: %w", err)
	}
	t.mu.Lock()
	t.s.MessagesReceived++
	t.s.BytesReceived += t.cr.n - before
	t.mu.Unlock()
	return m, nil
}

func (t *tcpConn) Close() error {
	t.closeOnce.Do(func() { t.closeErr = t.nc.Close() })
	return t.closeErr
}

// Listener accepts PLOS protocol connections.
type Listener struct {
	l net.Listener
}

// Listen starts a TCP listener on addr (":0" picks an ephemeral port).
func Listen(addr string) (*Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: Listen %s: %w", addr, err)
	}
	return &Listener{l: l}, nil
}

// Addr returns the bound address (useful with ":0").
func (l *Listener) Addr() string { return l.l.Addr().String() }

// Accept waits for the next client connection.
func (l *Listener) Accept() (Conn, error) {
	nc, err := l.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: Accept: %w", err)
	}
	return NewTCPConn(nc), nil
}

// AcceptN collects exactly n client connections.
func (l *Listener) AcceptN(n int) ([]Conn, error) {
	conns := make([]Conn, 0, n)
	for len(conns) < n {
		c, err := l.Accept()
		if err != nil {
			for _, open := range conns {
				_ = open.Close()
			}
			return nil, err
		}
		conns = append(conns, c)
	}
	return conns, nil
}

// Close stops the listener.
func (l *Listener) Close() error { return l.l.Close() }
