package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// pipeConn is one endpoint of an in-process connection. Messages flow over
// unbuffered channels: a Send completes only when the peer Recvs, mirroring
// the request/response discipline of the PLOS protocol.
type pipeConn struct {
	counter
	send chan<- Message
	recv <-chan Message

	closeOnce sync.Once
	closed    chan struct{}   // this endpoint closed
	peer      <-chan struct{} // peer endpoint closed

	// opTimeout, when positive, bounds each Send/Recv. A timed-out pipe op
	// consumes nothing — the message was never handed over — so pipe
	// timeouts are transient and may be retried on the same conn.
	opTimeout atomic.Int64
}

// SetOpTimeout bounds every subsequent Send/Recv to d (d <= 0 clears it).
func (p *pipeConn) SetOpTimeout(d time.Duration) { p.opTimeout.Store(int64(d)) }

// opDeadline returns a channel that fires when the op timeout expires, plus
// its stop function; both are nil when no timeout is configured.
func (p *pipeConn) opDeadline() (<-chan time.Time, func() bool) {
	d := time.Duration(p.opTimeout.Load())
	if d <= 0 {
		return nil, nil
	}
	tm := time.NewTimer(d)
	return tm.C, tm.Stop
}

// Pipe returns two connected in-process endpoints. Traffic is accounted
// with Message.WireSize so simulated runs report deterministic volumes.
func Pipe() (Conn, Conn) {
	ab := make(chan Message)
	ba := make(chan Message)
	ca := make(chan struct{})
	cb := make(chan struct{})
	a := &pipeConn{send: ab, recv: ba, closed: ca, peer: cb}
	b := &pipeConn{send: ba, recv: ab, closed: cb, peer: ca}
	return a, b
}

func (p *pipeConn) Send(m Message) error {
	deadline, stop := p.opDeadline()
	if stop != nil {
		defer stop()
	}
	select {
	case <-p.closed:
		return fmt.Errorf("transport: Send: %w", ErrClosed)
	case <-p.peer:
		return fmt.Errorf("transport: Send: peer %w", ErrClosed)
	case <-deadline:
		return markTransient(fmt.Errorf("transport: Send: %w", ErrTimeout))
	case p.send <- m:
		p.addSent(m.WireSize())
		return nil
	}
}

func (p *pipeConn) Recv() (Message, error) {
	deadline, stop := p.opDeadline()
	if stop != nil {
		defer stop()
	}
	select {
	case <-p.closed:
		return Message{}, fmt.Errorf("transport: Recv: %w", ErrClosed)
	case m := <-p.recv:
		p.addReceived(m.WireSize())
		return m, nil
	case <-deadline:
		return Message{}, markTransient(fmt.Errorf("transport: Recv: %w", ErrTimeout))
	case <-p.peer:
		// Drain any message raced with the close.
		select {
		case m := <-p.recv:
			p.addReceived(m.WireSize())
			return m, nil
		default:
			return Message{}, fmt.Errorf("transport: Recv: peer %w", ErrClosed)
		}
	}
}

func (p *pipeConn) Close() error {
	p.closeOnce.Do(func() { close(p.closed) })
	return nil
}
