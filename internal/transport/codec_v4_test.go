package transport

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"

	"plos/internal/compress"
	"plos/internal/rng"
)

// compVec produces a deterministic compressed vector for codec tests (the
// frame-th frame of a fresh stream, so frame > 0 exercises delta coding).
func compVec(cfg compress.Config, dim, frames int, seed int64) *compress.Vec {
	enc := compress.NewEncoder(cfg)
	g := rng.New(seed)
	var v *compress.Vec
	for i := 0; i < frames; i++ {
		x := make([]float64, dim)
		for j := range x {
			x[j] = 2*g.Float64() - 1
		}
		v = enc.Encode(compress.SlotW, x)
	}
	return v
}

// sampleV4Messages covers the codec v4 surface: caps offers and answers,
// every compression scheme alone and composed, multi-slot payloads, and the
// telemetry piggyback sharing a frame with a compression block.
func sampleV4Messages() []Message {
	q8 := compress.Config{Quant: 8}
	q16 := compress.Config{Quant: 16}
	topk := compress.Config{TopK: 0.25}
	delta := compress.Config{Delta: true}
	composed := compress.Config{Quant: 8, TopK: 0.25, Delta: true}
	return []Message{
		{Type: MsgHello, Dim: 12, Samples: 40, Labeled: 5, Caps: &composed},
		{Type: MsgHello, Dim: 12, Samples: 40, Labeled: 5, Caps: &compress.Config{}},
		{Type: MsgHello, Users: 8, Caps: &q8, Config: &WireConfig{
			Lambda: 100, Cl: 1, Cu: 0.2, Epsilon: 1e-3, Rho: 1,
			MaxCutIter: 60, QPMaxIter: 5000, Telemetry: true,
		}},
		{Type: MsgUpdate, Round: 2, Comp: &WireComp{W: compVec(q8, 20, 1, 1), V: compVec(q8, 20, 1, 2)}},
		{Type: MsgUpdate, Round: 3, Comp: &WireComp{W: compVec(q16, 20, 1, 3)}},
		{Type: MsgParams, Round: 4, Comp: &WireComp{W0: compVec(topk, 40, 1, 4), U: compVec(topk, 40, 1, 5)}},
		{Type: MsgParams, Round: 5, Comp: &WireComp{W0: compVec(delta, 10, 1, 6)}}, // first frame: raw scheme 0
		{Type: MsgParams, Round: 6, Comp: &WireComp{W0: compVec(delta, 10, 3, 7)}}, // delta frame
		{Type: MsgUpdate, Round: 7, Xi: 0.25, Comp: &WireComp{
			W: compVec(composed, 64, 2, 8), V: compVec(composed, 64, 2, 9),
		}},
		{Type: MsgUpdate, Round: 8, Comp: &WireComp{W: compVec(composed, 33, 1, 10)},
			Telemetry: &WireTelemetry{SolveNS: 99, QPIters: 3, MsgsSent: 4, EnergyJ: 1.5}},
		{Type: MsgUpdate, Round: 9, Comp: &WireComp{}}, // negotiated but empty payload
	}
}

func TestCodecV4RoundTrip(t *testing.T) {
	for i, m := range sampleV4Messages() {
		enc := EncodeMessage(m)
		if enc[1] != codecVersionComp {
			t.Fatalf("message %d: version byte %d, want %d", i, enc[1], codecVersionComp)
		}
		got, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("message %d: decode: %v", i, err)
		}
		if !equalMessages(m, got) {
			t.Errorf("message %d: round trip mismatch:\n sent %+v\n got  %+v", i, m, got)
		}
		if re := EncodeMessage(got); !bytes.Equal(enc, re) {
			t.Errorf("message %d: re-encode differs from original encoding", i)
		}
	}
}

// TestCodecV3BitIdentityPinned is the compression-off acceptance gate: any
// message without negotiation or compression blocks must encode to exactly
// the codec v3 bytes, pinned here against golden frames captured before
// codec v4 existed. A compression-disabled deployment is therefore
// bit-identical to a v3 one on the wire.
func TestCodecV3BitIdentityPinned(t *testing.T) {
	golden := []struct {
		m   Message
		hex string
	}{
		{Message{Type: MsgParams, Round: 7, W0: []float64{0.1}, U: []float64{-0.5, 3}},
			"500303000000000000000700000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000010000009a9999999999b93f02000000000000000000e0bf0000000000000840000000000000000000"},
		{Message{Type: MsgUpdate, Round: 7, W: []float64{1, 2, 3}, V: []float64{4, 5, 6}, Xi: 0.125},
			"500304000000000000000700000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000c03f00000000000000000000000003000000000000000000f03f000000000000004000000000000008400300000000000000000010400000000000001440000000000000184000"},
		{Message{Type: MsgHello, Users: 30, Config: &WireConfig{
			Lambda: 100, Cl: 1, Cu: 0.2, Epsilon: 1e-3, Rho: 1,
			MaxCutIter: 60, QPMaxIter: 5000, BalanceGuard: true, WarmWorkingSets: false,
		}},
			"5003010000000000000000000000000000000000000000000000000000000000000000000000000000001e000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000010000000000005940000000000000f03f9a9999999999c93ffca9f1d24d62503f000000000000f03f3c000000000000008813000000000000010000"},
		{Message{Type: MsgUpdate, Round: 4, W: []float64{1, -2}, Xi: 0.5, Telemetry: &WireTelemetry{
			SolveNS: 1_234_567, QPIters: 88, Cuts: 6, WarmHits: 5, SignFlips: 2,
			MsgsSent: 17, MsgsRecv: 18, BytesSent: 4096, BytesRecv: 8192, EnergyJ: 0.0625,
		}},
			"500304000000000000000400000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000e03f00000000000000000000000002000000000000000000f03f00000000000000c000000000000187d612000000000058000000000000000600000000000000050000000000000002000000000000001100000000000000120000000000000000100000000000000020000000000000000000000000b03f"},
	}
	for i, g := range golden {
		want, err := hex.DecodeString(g.hex)
		if err != nil {
			t.Fatalf("golden %d: %v", i, err)
		}
		if got := EncodeMessage(g.m); !bytes.Equal(got, want) {
			t.Errorf("golden %d: encoding drifted from pinned v3 bytes", i)
		}
	}
	// And every compression-free sample emits version byte 3.
	for i, m := range sampleMessages() {
		if enc := EncodeMessage(m); enc[1] != codecVersion {
			t.Errorf("sample %d: compression-free message encoded as version %d", i, enc[1])
		}
	}
}

func TestCodecV4RejectsCorruption(t *testing.T) {
	valid := EncodeMessage(sampleV4Messages()[8]) // composed q8+topk+delta, two slots
	// Flags byte offset: magic+version (2) + eight i64 (64) + Xi (8) +
	// reason length (4) + four empty vector lengths (16) + config presence
	// byte (1) = 95 for this sample.
	const flags = 95
	if valid[flags-1] != 0 {
		t.Fatalf("test assumption broken: config presence byte not at %d", flags-1)
	}
	mut := func(off int, b byte) []byte {
		out := append([]byte(nil), valid...)
		out[off] = b
		return out
	}
	cases := map[string][]byte{
		"unknown flag bits":     mut(flags, 0x84),
		"v4 without blocks":     mut(flags, 0x00),
		"v4 telemetry only":     mut(flags, 0x01),
		"bad slot byte":         mut(flags+1, 0xf0),
		"bad scheme bits":       mut(flags+2+4, 0x80), // first vec: dim u32 then scheme
		"q8 and q16 both":       mut(flags+2+4, 0x03),
		"truncated comp block":  valid[:len(valid)-3],
		"trailing after comp":   append(append([]byte(nil), valid...), 0),
		"caps bad quant":        caps(t, 7),
		"caps bad delta byte":   capsDelta(t, 2),
		"zero-dim vector":       zeroDimVec(t),
		"index out of range":    badIndexVec(t),
		"non-minimal index gap": nonMinimalGapVec(t),
	}
	for name, data := range cases {
		if _, err := DecodeMessage(data); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		} else if !errors.Is(err, ErrCodec) {
			t.Errorf("%s: error %v does not wrap ErrCodec", name, err)
		}
	}
}

// caps builds a caps-carrying hello and corrupts its quant byte.
func caps(t *testing.T, quant byte) []byte {
	t.Helper()
	m := Message{Type: MsgHello, Caps: &compress.Config{Quant: 8}}
	enc := EncodeMessage(m)
	enc[len(enc)-10] = quant // quant byte sits 10 bytes from the end (quant + topk f64 + delta)
	return enc
}

func capsDelta(t *testing.T, b byte) []byte {
	t.Helper()
	enc := EncodeMessage(Message{Type: MsgHello, Caps: &compress.Config{Quant: 8}})
	enc[len(enc)-1] = b
	return enc
}

func zeroDimVec(t *testing.T) []byte {
	t.Helper()
	enc := EncodeMessage(Message{Type: MsgUpdate, Comp: &WireComp{W: compVec(compress.Config{Quant: 8}, 4, 1, 1)}})
	// The vec block starts right after flags+presence; zero its dim u32.
	off := len(enc) - compVec(compress.Config{Quant: 8}, 4, 1, 1).EncodedSize()
	for i := 0; i < 4; i++ {
		enc[off+i] = 0
	}
	return enc
}

func badIndexVec(t *testing.T) []byte {
	t.Helper()
	v := compVec(compress.Config{TopK: 0.5}, 8, 1, 1)
	enc := EncodeMessage(Message{Type: MsgUpdate, Comp: &WireComp{W: v}})
	off := len(enc) - v.EncodedSize()
	// First gap varint sits after dim(4)+scheme(1)+k(4); 0xff 0x7f = gap
	// 16383, far beyond dim 8.
	enc[off+9] = 0xff
	enc[off+10] = 0x7f
	return enc
}

func nonMinimalGapVec(t *testing.T) []byte {
	t.Helper()
	v := compVec(compress.Config{TopK: 0.5}, 8, 1, 1)
	raw := v.AppendTo(nil)
	// Rewrite the first gap as a redundant two-byte varint (0x81 0x00 = 1).
	out := append([]byte(nil), raw[:9]...)
	out = append(out, 0x81, 0x00)
	out = append(out, raw[10:]...)
	head := EncodeMessage(Message{Type: MsgUpdate, Comp: &WireComp{}})
	frame := append([]byte(nil), head[:len(head)-1]...) // strip empty presence byte
	frame = append(frame, 0x04)                         // W slot present
	frame = append(frame, out...)
	return frame
}

// TestCompressedFrameFaultSweep mirrors the PR 1 per-message fault sweeps
// for v4 frames: every truncation point and every single-byte flip either
// fails with a typed ErrCodec error or yields a message that still
// round-trips canonically — never a panic or a hang.
func TestCompressedFrameFaultSweep(t *testing.T) {
	for i, m := range sampleV4Messages() {
		valid := EncodeMessage(m)
		for cut := 0; cut < len(valid); cut++ {
			if _, err := DecodeMessage(valid[:cut]); err == nil {
				t.Fatalf("message %d: truncation at %d accepted", i, cut)
			} else if !errors.Is(err, ErrCodec) {
				t.Fatalf("message %d: truncation at %d: error %v does not wrap ErrCodec", i, cut, err)
			}
		}
		for off := 0; off < len(valid); off++ {
			mut := append([]byte(nil), valid...)
			mut[off] ^= 0xff
			got, err := DecodeMessage(mut)
			if err != nil {
				if !errors.Is(err, ErrCodec) {
					t.Fatalf("message %d: flip at %d: error %v does not wrap ErrCodec", i, off, err)
				}
				continue
			}
			if re := EncodeMessage(got); !bytes.Equal(mut, re) {
				t.Fatalf("message %d: flip at %d accepted but not canonical", i, off)
			}
		}
	}
}

// FuzzCompressedFrameRoundTrip extends the codec fuzz corpus to v4 frames:
// all three schemes and their compositions, caps blocks, and shared
// telemetry. The properties are those of FuzzMessageRoundTrip — no panics,
// and accepted inputs are canonical.
func FuzzCompressedFrameRoundTrip(f *testing.F) {
	for _, m := range sampleV4Messages() {
		f.Add(EncodeMessage(m))
	}
	f.Add([]byte{'P', 4})
	f.Add(append([]byte{'P', 4}, make([]byte, 100)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		re := EncodeMessage(m)
		if !bytes.Equal(data, re) {
			t.Fatalf("decodable input is not canonical:\n in  %x\n out %x", data, re)
		}
		m2, err := DecodeMessage(re)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if !equalMessages(m, m2) {
			t.Fatalf("decode∘encode∘decode drifted:\n first  %+v\n second %+v", m, m2)
		}
	})
}
