// Package rng provides the deterministic randomness substrate for the
// repository. Every experiment, dataset generator, and stochastic solver in
// this repo takes an explicit *rng.RNG (or a seed), never the global
// math/rand state, so that every figure in EXPERIMENTS.md is regenerable
// bit-for-bit.
//
// The package wraps math/rand's PCG-free source with a splitting scheme:
// Split derives an independent child stream from a parent by hashing the
// parent seed with a label. That lets a single experiment seed fan out
// deterministically over users, trials, and sweep points without the
// streams colliding.
package rng

import (
	"hash/fnv"
	"math"
	"math/rand"

	"plos/internal/mat"
)

// RNG is a deterministic random stream. It is NOT safe for concurrent use;
// Split a child per goroutine instead.
type RNG struct {
	seed int64
	r    *rand.Rand
}

// New returns a stream seeded with seed.
func New(seed int64) *RNG {
	return &RNG{seed: seed, r: rand.New(rand.NewSource(seed))}
}

// Seed returns the seed this stream was created with.
func (g *RNG) Seed() int64 { return g.seed }

// Split derives an independent child stream keyed by label. Splitting is a
// pure function of (parent seed, label): it does not consume parent state,
// so the parent's own sequence is unaffected and splits are order-free.
func (g *RNG) Split(label string) *RNG {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(g.seed) >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(label))
	return New(int64(h.Sum64()))
}

// SplitN derives the i-th indexed child stream under label.
func (g *RNG) SplitN(label string, i int) *RNG {
	h := fnv.New64a()
	var buf [8]byte
	for k := 0; k < 8; k++ {
		buf[k] = byte(uint64(g.seed) >> (8 * k))
	}
	_, _ = h.Write(buf[:])
	_, _ = h.Write([]byte(label))
	for k := 0; k < 8; k++ {
		buf[k] = byte(uint64(i) >> (8 * k))
	}
	_, _ = h.Write(buf[:])
	return New(int64(h.Sum64()))
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a uniform non-negative 63-bit value (used for session
// tokens, which must be reproducible from the seed).
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Norm returns a standard normal sample.
func (g *RNG) Norm() float64 { return g.r.NormFloat64() }

// Gauss returns a normal sample with the given mean and standard deviation.
func (g *RNG) Gauss(mean, std float64) float64 { return mean + std*g.r.NormFloat64() }

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle shuffles n elements via swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// NormVector returns an n-dimensional standard normal vector.
func (g *RNG) NormVector(n int) mat.Vector {
	v := make(mat.Vector, n)
	for i := range v {
		v[i] = g.r.NormFloat64()
	}
	return v
}

// UnitVector returns a uniformly random direction on the (n-1)-sphere.
func (g *RNG) UnitVector(n int) mat.Vector {
	for {
		v := g.NormVector(n)
		if norm := v.Norm2(); norm > 1e-12 {
			v.Scale(1 / norm)
			return v
		}
	}
}

// SampleWithoutReplacement returns k distinct indices uniformly drawn from
// [0,n), in random order. It panics if k > n.
func (g *RNG) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic("rng: SampleWithoutReplacement: k > n")
	}
	perm := g.r.Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	return out
}

// MVN samples from a multivariate normal with the given mean and covariance.
// It Cholesky-factorizes cov once at construction.
type MVN struct {
	mean mat.Vector
	l    *mat.Matrix // lower Cholesky factor of cov
}

// NewMVN builds a multivariate-normal sampler. cov must be symmetric
// positive definite.
func NewMVN(mean mat.Vector, cov *mat.Matrix) (*MVN, error) {
	f, err := mat.Cholesky(cov)
	if err != nil {
		return nil, err
	}
	return &MVN{mean: mean.Clone(), l: f.L()}, nil
}

// Sample draws one sample using stream g.
func (m *MVN) Sample(g *RNG) mat.Vector {
	z := g.NormVector(len(m.mean))
	x := m.l.MulVec(z)
	x.Add(m.mean)
	return x
}

// Dim returns the dimensionality of the distribution.
func (m *MVN) Dim() int { return len(m.mean) }

// Rotation2D returns the 2x2 rotation matrix for angle theta (radians).
// The synthetic-data experiments (paper §VI-D) rotate user datasets around
// the origin with uniformly spaced angles.
func Rotation2D(theta float64) *mat.Matrix {
	c, s := math.Cos(theta), math.Sin(theta)
	return mat.FromRows([][]float64{{c, -s}, {s, c}})
}
