package rng

import (
	"math"
	"testing"
	"testing/quick"

	"plos/internal/mat"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed should give same sequence")
		}
	}
	if a.Seed() != 42 {
		t.Errorf("Seed() = %d", a.Seed())
	}
}

func TestSplitIndependentOfParentState(t *testing.T) {
	a := New(7)
	child1 := a.Split("x").Float64()
	// Consume parent state; split must not be affected.
	for i := 0; i < 50; i++ {
		a.Float64()
	}
	child2 := a.Split("x").Float64()
	if child1 != child2 {
		t.Error("Split should be a pure function of (seed, label)")
	}
}

func TestSplitDistinctLabels(t *testing.T) {
	g := New(7)
	if g.Split("a").Float64() == g.Split("b").Float64() {
		t.Error("different labels should give different streams")
	}
	if g.SplitN("u", 0).Float64() == g.SplitN("u", 1).Float64() {
		t.Error("different indices should give different streams")
	}
}

func TestGaussMoments(t *testing.T) {
	g := New(1)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := g.Gauss(3, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("variance = %v, want ~4", variance)
	}
}

func TestBoolProbability(t *testing.T) {
	g := New(2)
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			count++
		}
	}
	p := float64(count) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("empirical p = %v, want ~0.3", p)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := New(3)
	idx := g.SampleWithoutReplacement(10, 5)
	if len(idx) != 5 {
		t.Fatalf("len = %d", len(idx))
	}
	seen := map[int]bool{}
	for _, i := range idx {
		if i < 0 || i >= 10 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
	defer func() {
		if recover() == nil {
			t.Error("k > n should panic")
		}
	}()
	g.SampleWithoutReplacement(3, 4)
}

func TestUnitVector(t *testing.T) {
	g := New(4)
	for i := 0; i < 20; i++ {
		v := g.UnitVector(7)
		if math.Abs(v.Norm2()-1) > 1e-12 {
			t.Fatalf("||v|| = %v", v.Norm2())
		}
	}
}

func TestMVNMoments(t *testing.T) {
	mean := mat.Vector{1, -2}
	cov := mat.FromRows([][]float64{{4, 1}, {1, 2}})
	m, err := NewMVN(mean, cov)
	if err != nil {
		t.Fatalf("NewMVN: %v", err)
	}
	if m.Dim() != 2 {
		t.Errorf("Dim = %d", m.Dim())
	}
	g := New(5)
	const n = 100000
	sum := mat.NewVector(2)
	samples := make([]mat.Vector, n)
	for i := 0; i < n; i++ {
		s := m.Sample(g)
		samples[i] = s
		sum.Add(s)
	}
	sum.Scale(1.0 / n)
	if !sum.Equal(mean, 0.05) {
		t.Errorf("sample mean = %v, want ~%v", sum, mean)
	}
	// Empirical covariance.
	var c00, c01, c11 float64
	for _, s := range samples {
		d0, d1 := s[0]-sum[0], s[1]-sum[1]
		c00 += d0 * d0
		c01 += d0 * d1
		c11 += d1 * d1
	}
	c00, c01, c11 = c00/n, c01/n, c11/n
	if math.Abs(c00-4) > 0.15 || math.Abs(c01-1) > 0.15 || math.Abs(c11-2) > 0.15 {
		t.Errorf("cov = [[%v,%v],[.,%v]], want [[4,1],[1,2]]", c00, c01, c11)
	}
}

func TestMVNRejectsIndefinite(t *testing.T) {
	cov := mat.FromRows([][]float64{{1, 3}, {3, 1}})
	if _, err := NewMVN(mat.Vector{0, 0}, cov); err == nil {
		t.Error("expected error for indefinite covariance")
	}
}

func TestRotation2D(t *testing.T) {
	r := Rotation2D(math.Pi / 2)
	got := r.MulVec(mat.Vector{1, 0})
	if !got.Equal(mat.Vector{0, 1}, 1e-12) {
		t.Errorf("R(π/2)·e1 = %v", got)
	}
}

// Property: rotation preserves norms.
func TestPropertyRotationIsometry(t *testing.T) {
	f := func(theta, x, y float64) bool {
		if math.IsNaN(theta) || math.IsInf(theta, 0) ||
			math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return true
		}
		theta = math.Mod(theta, 2*math.Pi)
		x, y = math.Mod(x, 1e6), math.Mod(y, 1e6)
		v := mat.Vector{x, y}
		rv := Rotation2D(theta).MulVec(v)
		return math.Abs(rv.Norm2()-v.Norm2()) <= 1e-9*(1+v.Norm2())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Perm always returns a valid permutation.
func TestPropertyPermValid(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		seen := make([]bool, n)
		for _, i := range p {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIntnNormShuffle(t *testing.T) {
	g := New(11)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		v := g.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("Intn should hit every value, saw %d", len(seen))
	}
	var sum float64
	for i := 0; i < 10000; i++ {
		sum += g.Norm()
	}
	if math.Abs(sum/10000) > 0.05 {
		t.Errorf("Norm mean = %v", sum/10000)
	}
	xs := []int{1, 2, 3, 4, 5}
	orig := append([]int(nil), xs...)
	g.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	count := map[int]bool{}
	for _, v := range xs {
		count[v] = true
	}
	if len(count) != len(orig) {
		t.Error("Shuffle lost elements")
	}
}
