// Package kplos implements kernelized centralized PLOS — the nonlinear
// extension the paper points at with "we can simplify the optimization
// problem through feature mapping and the kernel as described in [33]"
// (Evgeniou & Pontil's multi-task kernel) but only evaluates linearly.
//
// The algorithm is the paper's Algorithm 1 verbatim (CCCP + cutting plane +
// the structured QP dual); the only change is representation. A constraint
// aggregate z_kt lives in the RKHS as an expansion over user t's samples,
//
//	A_kt = (1/m_t) Σ_i c_i w_i eff_i Φ(x_it),
//
// all Φ-space inner products reduce to kernel sums
// ⟨z_kt, z_k't'⟩ = (λ/T + δ_tt')·⟨A_kt, A_k't'⟩_K, and a user's decision
// function is the kernel expansion
//
//	f_t(x) = Σ_{(t',k)} γ_kt' (λ/T + δ_tt') ⟨A_kt', Φ(x)⟩_K.
//
// With kernel.Linear the trainer agrees with internal/core's analytic
// linear solver, which the tests cross-check.
package kplos

import (
	"errors"
	"fmt"
	"sort"

	"plos/internal/core"
	"plos/internal/kernel"
	"plos/internal/mat"
	"plos/internal/optimize"
	"plos/internal/parallel"
	"plos/internal/qp"
)

// Model is a trained kernelized PLOS model: expansions over the training
// samples for the global function and each personalized one.
type Model struct {
	kern    kernel.Kernel
	samples []mat.Vector // flattened training samples by global index
	w0      kernel.Expansion
	perUser []kernel.Expansion // personalized *offsets* v_t (w_t = w0 + v_t)
}

// NumUsers returns the number of personalized functions.
func (m *Model) NumUsers() int { return len(m.perUser) }

// ScoreUser evaluates user t's decision function on a new sample.
func (m *Model) ScoreUser(t int, x mat.Vector) float64 {
	return m.evalExpansion(m.w0, x) + m.evalExpansion(m.perUser[t], x)
}

// PredictUser classifies x with user t's personalized function.
func (m *Model) PredictUser(t int, x mat.Vector) float64 {
	if m.ScoreUser(t, x) >= 0 {
		return 1
	}
	return -1
}

// PredictGlobal classifies x with the shared function (cold start).
func (m *Model) PredictGlobal(x mat.Vector) float64 {
	if m.evalExpansion(m.w0, x) >= 0 {
		return 1
	}
	return -1
}

// SupportSize returns the number of training samples with nonzero
// coefficient in user t's full expansion (w0 + v_t).
func (m *Model) SupportSize(t int) int {
	nz := map[int]float64{}
	for p, i := range m.w0.Idx {
		nz[i] += m.w0.Coeff[p]
	}
	for p, i := range m.perUser[t].Idx {
		nz[i] += m.perUser[t].Coeff[p]
	}
	n := 0
	for _, c := range nz {
		if c != 0 {
			n++
		}
	}
	return n
}

func (m *Model) evalExpansion(e kernel.Expansion, x mat.Vector) float64 {
	var s float64
	for p, i := range e.Idx {
		if e.Coeff[p] != 0 {
			s += e.Coeff[p] * m.kern.Eval(m.samples[i], x)
		}
	}
	return s
}

// kConstraint is one cutting-plane constraint in RKHS representation.
type kConstraint struct {
	user int
	a    kernel.Expansion
	c    float64
	key  string
	// dots caches ⟨A, Φ(sample_j)⟩ for every global sample j, so margins
	// refresh in O(#constraints · N) per round instead of re-walking
	// kernel rows.
	dots []float64
}

// Train runs kernelized centralized PLOS. cfg is interpreted exactly as in
// core.TrainCentralized.
func Train(users []core.UserData, cfg core.Config, k kernel.Kernel) (*Model, core.TrainInfo, error) {
	if k == nil {
		return nil, core.TrainInfo{}, errors.New("kplos: nil kernel")
	}
	st, err := newState(users, cfg, k)
	if err != nil {
		return nil, core.TrainInfo{}, err
	}
	info := core.TrainInfo{}
	cccpInfo, err := optimize.CCCP(func(round int) (float64, error) {
		st.refreshSigns()
		if !st.cfg.WarmWorkingSets {
			st.constraints = nil
			st.keys = make(map[string]struct{})
			st.gamma = nil
			st.margins.Zero()
			st.invalidateGramCache()
		}
		obj, rounds, qpIters, err := st.solveConvexified()
		info.CutRounds += rounds
		info.QPIterations += qpIters
		return obj, err
	}, st.cfg.CCCPTol, st.cfg.MaxCCCPIter)
	if err != nil && !errors.Is(err, optimize.ErrNotDescending) {
		return nil, info, fmt.Errorf("kplos: Train: %w", err)
	}
	info.CCCPIterations = cccpInfo.Iterations
	info.CCCPConverged = cccpInfo.Converged
	info.Objective = cccpInfo.Objective
	info.ObjectiveHistory = cccpInfo.History
	info.Constraints = len(st.constraints)
	return st.buildModel(), info, nil
}

type state struct {
	users []core.UserData
	cfg   core.Config
	kern  kernel.Kernel
	gram  *kernel.Gram
	t     int

	budget  float64 // T/(2λ)
	scaleW0 float64 // λ/T

	signs   [][]float64
	weights [][]float64

	constraints []*kConstraint
	keys        map[string]struct{}
	gamma       mat.Vector // aligned with constraints
	// margins[t*?]: current f_t(x_it) for every global sample index.
	margins mat.Vector

	// Incremental restricted-QP cache (DESIGN.md §11): constraints only
	// append between CCCP resets, so the dual Gram, its Gershgorin bound,
	// the linear term and the per-user group lists grow by the newly
	// added constraints instead of being rebuilt each cut round. flatLen
	// counts the constraints already folded into groups/cvec; the Gram
	// materialization is tracked by gram itself (core.Config.RebuildGram
	// resets it every solve for the bit-identity property test).
	flatLen int
	groups  [][]int
	cvec    mat.Vector
	budgets []float64
	qpGram  qp.GramCache
	scratch qp.Scratch
}

// invalidateGramCache drops the cached restricted dual; called when the
// constraint pool is reset between CCCP rounds (cold working sets).
func (s *state) invalidateGramCache() {
	s.flatLen = 0
	for t := range s.groups {
		s.groups[t] = s.groups[t][:0]
	}
	s.cvec = s.cvec[:0]
	s.qpGram.Reset()
}

func newState(users []core.UserData, cfg core.Config, k kernel.Kernel) (*state, error) {
	if len(users) == 0 {
		return nil, core.ErrNoUsers
	}
	mats := make([]*mat.Matrix, len(users))
	for t, u := range users {
		if u.X == nil || u.X.Rows == 0 {
			return nil, fmt.Errorf("%w (user %d)", core.ErrEmptyUser, t)
		}
		if len(u.Y) > u.X.Rows {
			return nil, fmt.Errorf("%w: user %d", core.ErrTooManyLabels, t)
		}
		for _, y := range u.Y {
			if y != 1 && y != -1 {
				return nil, fmt.Errorf("%w: user %d", core.ErrBadLabel, t)
			}
		}
		mats[t] = u.X
	}
	gram, err := kernel.NewGramWorkers(mats, k, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("kplos: %w", err)
	}
	cfg = fillDefaults(cfg)
	st := &state{
		users:   users,
		cfg:     cfg,
		kern:    k,
		gram:    gram,
		t:       len(users),
		budget:  float64(len(users)) / (2 * cfg.Lambda),
		scaleW0: cfg.Lambda / float64(len(users)),
		signs:   make([][]float64, len(users)),
		weights: make([][]float64, len(users)),
		keys:    make(map[string]struct{}),
		margins: mat.NewVector(gram.Total()),
		groups:  make([][]int, len(users)),
		budgets: make([]float64, len(users)),
	}
	for t := range st.budgets {
		st.budgets[t] = st.budget
	}
	for t, u := range users {
		m := u.NumSamples()
		w := make([]float64, m)
		for i := 0; i < m; i++ {
			if i < u.NumLabeled() {
				w[i] = cfg.Cl / float64(m)
			} else {
				w[i] = cfg.Cu / float64(m)
			}
		}
		st.weights[t] = w
	}
	st.initMargins()
	return st, nil
}

func fillDefaults(c core.Config) core.Config {
	if c.Lambda <= 0 {
		c.Lambda = 100
	}
	if c.Cl <= 0 {
		c.Cl = 1
	}
	if c.Cu < 0 {
		c.Cu = 0
	} else if c.Cu == 0 {
		c.Cu = 0.2
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 1e-3
	}
	if c.CCCPTol <= 0 {
		c.CCCPTol = 1e-3
	}
	if c.MaxCCCPIter <= 0 {
		c.MaxCCCPIter = 20
	}
	if c.MaxCutIter <= 0 {
		c.MaxCutIter = 60
	}
	if c.QPMaxIter <= 0 {
		c.QPMaxIter = 5000
	}
	return c
}

// initMargins seeds the CCCP sign freeze with the kernel nearest-centroid
// scorer over the pooled labeled samples — the RKHS analogue of the linear
// solver's ridge init (robust to the paper's label noise). With no labels
// anywhere, samples alternate signs (balanced, deterministic).
func (s *state) initMargins() {
	type labeled struct {
		global int
		y      float64
	}
	var pool []labeled
	for t, u := range s.users {
		for i := 0; i < u.NumLabeled(); i++ {
			pool = append(pool, labeled{s.gram.Index(t, i), u.Y[i]})
		}
	}
	if len(pool) == 0 {
		for j := range s.margins {
			if j%2 == 0 {
				s.margins[j] = 1
			} else {
				s.margins[j] = -1
			}
		}
		return
	}
	var nPos, nNeg float64
	for _, l := range pool {
		if l.y > 0 {
			nPos++
		} else {
			nNeg++
		}
	}
	for j := range s.margins {
		var sPos, sNeg float64
		for _, l := range pool {
			if l.y > 0 {
				sPos += s.gram.At(l.global, j)
			} else {
				sNeg += s.gram.At(l.global, j)
			}
		}
		if nPos > 0 {
			sPos /= nPos
		}
		if nNeg > 0 {
			sNeg /= nNeg
		}
		s.margins[j] = sPos - sNeg
	}
}

func (s *state) refreshSigns() {
	for t, u := range s.users {
		m := u.NumSamples()
		eff := make([]float64, m)
		copy(eff, u.Y)
		for i := u.NumLabeled(); i < m; i++ {
			if s.margins[s.gram.Index(t, i)] >= 0 {
				eff[i] = 1
			} else {
				eff[i] = -1
			}
		}
		s.signs[t] = eff
	}
}

// mostViolated builds user t's Eq. (14) constraint from current margins.
func (s *state) mostViolated(t int) *kConstraint {
	u := s.users[t]
	m := u.NumSamples()
	var idx []int
	var coeff []float64
	var c float64
	bits := make([]byte, (m+7)/8)
	for i := 0; i < m; i++ {
		w := s.weights[t][i]
		if w == 0 {
			continue
		}
		if s.signs[t][i]*s.margins[s.gram.Index(t, i)] < 1 {
			idx = append(idx, s.gram.Index(t, i))
			coeff = append(coeff, w*s.signs[t][i])
			c += w
			bits[i/8] |= 1 << (i % 8)
		}
	}
	return &kConstraint{
		user: t,
		a:    kernel.Expansion{Idx: idx, Coeff: coeff},
		c:    c,
		key:  fmt.Sprintf("%d:%s", t, bits),
	}
}

func (s *state) slack(t int) float64 {
	var xi float64
	for _, kc := range s.constraints {
		if kc.user != t {
			continue
		}
		v := kc.c - s.constraintValue(kc)
		if v > xi {
			xi = v
		}
	}
	return xi
}

// constraintValue returns w'·z for a constraint: Σ_i γ_i(λ/T+δ)⟨A_i,A⟩.
// Using the margin cache: w'·z_kt = Σ_i in A: coeff_i · margin(sample i)
// (both sides are linear in the same expansion), so reuse margins.
func (s *state) constraintValue(kc *kConstraint) float64 {
	var v float64
	for p, i := range kc.a.Idx {
		v += kc.a.Coeff[p] * s.margins[i]
	}
	return v
}

// recomputeMargins refreshes f_t(x_j) for every sample from the dual γ.
func (s *state) recomputeMargins() {
	s.margins.Zero()
	for ci, kc := range s.constraints {
		g := s.gamma[ci]
		if g == 0 {
			continue
		}
		for t := range s.users {
			scale := s.scaleW0
			if t == kc.user {
				scale += 1
			}
			w := g * scale
			lo := s.gram.Index(t, 0)
			hi := lo + s.users[t].NumSamples()
			for j := lo; j < hi; j++ {
				s.margins[j] += w * kc.dots[j]
			}
		}
	}
}

func (s *state) solveConvexified() (float64, int, int, error) {
	qpIters, rounds := 0, 0
	for round := 0; round < s.cfg.MaxCutIter; round++ {
		rounds = round + 1
		if len(s.constraints) > 0 {
			iters, err := s.solveRestrictedQP()
			qpIters += iters
			if err != nil {
				return 0, rounds, qpIters, err
			}
			s.recomputeMargins()
		} else {
			s.margins.Zero()
		}
		added := 0
		for t := range s.users {
			kc := s.mostViolated(t)
			if _, dup := s.keys[kc.key]; dup {
				continue
			}
			xi := s.slack(t)
			if kc.c-s.constraintValue(kc)-xi > s.cfg.Epsilon {
				kc.dots = make([]float64, s.gram.Total())
				// Each cache slot is an independent kernel sum; slot j is
				// written by exactly one goroutine, so the fill fans out.
				parallel.Do(s.cfg.Workers, s.gram.Total(), func(j int) {
					kc.dots[j] = s.gram.DotSample(kc.a, j)
				})
				s.constraints = append(s.constraints, kc)
				s.keys[kc.key] = struct{}{}
				added++
			}
		}
		if added == 0 {
			break
		}
	}
	return s.objective(), rounds, qpIters, nil
}

// solveRestrictedQP solves the dual restricted to the current constraint
// pool. The pool is arrival-ordered and append-only between CCCP resets, so
// the Gram, its Gershgorin bound, the linear term and the group lists are
// served from the incremental cache and only the new rows/columns are
// computed each round.
func (s *state) solveRestrictedQP() (int, error) {
	n := len(s.constraints)
	for i := s.flatLen; i < n; i++ {
		kc := s.constraints[i]
		s.groups[kc.user] = append(s.groups[kc.user], i)
		s.cvec = append(s.cvec, kc.c)
	}
	s.flatLen = n
	if s.cfg.RebuildGram {
		s.qpGram.Reset()
	}
	// Cell (i, j): ⟨A_i, A_j⟩ via the cached per-sample dots of
	// constraint i — the same formula for cached and fresh cells, so the
	// incremental matrix is bit-identical to a from-scratch rebuild. New
	// columns fan out across the worker pool (disjoint cells per owner).
	g := s.qpGram.Grow(n, s.cfg.Workers, func(i, j int) float64 {
		kc, other := s.constraints[i], s.constraints[j]
		var dot float64
		for p, idx := range other.a.Idx {
			dot += other.a.Coeff[p] * kc.dots[idx]
		}
		v := s.scaleW0 * dot
		if kc.user == other.user {
			v += dot
		}
		return v
	})
	// Warm start: previous duals are a prefix of the arrival order.
	for len(s.gamma) < n {
		s.gamma = append(s.gamma, 0)
	}
	gamma, qinfo, err := qp.Solve(&qp.Problem{G: g, C: s.cvec,
		Groups: qp.GroupSpec{Groups: s.groups, Budgets: s.budgets}},
		qp.Options{MaxIter: s.cfg.QPMaxIter, Tol: 1e-9, X0: s.gamma,
			LipschitzBound: s.qpGram.Bound(), Scratch: &s.scratch, Obs: s.cfg.Obs})
	if err != nil && !errors.Is(err, qp.ErrMaxIterations) {
		return qinfo.Iterations, fmt.Errorf("kplos: restricted QP: %w", err)
	}
	s.gamma = append(s.gamma[:0], gamma...)
	return qinfo.Iterations, nil
}

// objective evaluates ½||w'||² + (T/2λ)Σξ_t; ||w'||² = γᵀGγ computed via
// constraint values (Gγ)_i = constraintValue(constraint i).
func (s *state) objective() float64 {
	var quad float64
	for i, kc := range s.constraints {
		quad += s.gamma[i] * s.constraintValue(kc)
	}
	obj := 0.5 * quad
	scale := float64(s.t) / (2 * s.cfg.Lambda)
	for t := range s.users {
		obj += scale * s.slack(t)
	}
	return obj
}

func (s *state) buildModel() *Model {
	samples := make([]mat.Vector, 0, s.gram.Total())
	for _, u := range s.users {
		for i := 0; i < u.X.Rows; i++ {
			samples = append(samples, u.X.Row(i).Clone())
		}
	}
	merge := func(into map[int]float64, e kernel.Expansion, scale float64) {
		for p, i := range e.Idx {
			into[i] += scale * e.Coeff[p]
		}
	}
	w0Map := map[int]float64{}
	perMaps := make([]map[int]float64, s.t)
	for t := range perMaps {
		perMaps[t] = map[int]float64{}
	}
	for ci, kc := range s.constraints {
		g := s.gamma[ci]
		if g == 0 {
			continue
		}
		merge(w0Map, kc.a, g*s.scaleW0)
		merge(perMaps[kc.user], kc.a, g)
	}
	toExp := func(m map[int]float64) kernel.Expansion {
		// Sorted global-index order: map iteration order is random, and an
		// unsorted expansion would make Score sums (and so the model bytes)
		// vary run to run.
		idx := make([]int, 0, len(m))
		for i, c := range m {
			if c != 0 {
				idx = append(idx, i)
			}
		}
		sort.Ints(idx)
		e := kernel.Expansion{}
		for _, i := range idx {
			e.Idx = append(e.Idx, i)
			e.Coeff = append(e.Coeff, m[i])
		}
		return e
	}
	model := &Model{kern: s.kern, samples: samples, w0: toExp(w0Map),
		perUser: make([]kernel.Expansion, s.t)}
	for t := range perMaps {
		model.perUser[t] = toExp(perMaps[t])
	}
	return model
}
