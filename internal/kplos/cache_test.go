package kplos

import (
	"fmt"
	"testing"

	"plos/internal/core"
	"plos/internal/kernel"
	"plos/internal/rng"
)

func expansionsExact(a, b kernel.Expansion) bool {
	if len(a.Idx) != len(b.Idx) {
		return false
	}
	for p := range a.Idx {
		if a.Idx[p] != b.Idx[p] || a.Coeff[p] != b.Coeff[p] {
			return false
		}
	}
	return true
}

// Property (DESIGN.md §11, kernelized twin of the internal/core test): the
// incremental restricted-QP cache changes no float — training with it is
// bit-identical to rebuilding the dual Gram from scratch every cut round,
// across seeds and worker counts.
func TestPropertyCacheBitIdenticalKernelized(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("seed=%d/workers=%d", seed, workers), func(t *testing.T) {
				g := rng.New(seed)
				var users []core.UserData
				for i := 0; i < 3; i++ {
					u, _ := linearUser(g.SplitN("u", i), 8, 5, float64(i)*0.3)
					users = append(users, u)
				}
				cfg := core.Config{Lambda: 50, Seed: seed, Workers: workers, MaxCCCPIter: 4}
				inc, incInfo, err := Train(users, cfg, kernel.RBF{Gamma: 0.25})
				if err != nil {
					t.Fatal(err)
				}
				cfg.RebuildGram = true
				reb, rebInfo, err := Train(users, cfg, kernel.RBF{Gamma: 0.25})
				if err != nil {
					t.Fatal(err)
				}
				if !expansionsExact(inc.w0, reb.w0) {
					t.Error("w0 expansions differ")
				}
				if len(inc.perUser) != len(reb.perUser) {
					t.Fatal("user counts differ")
				}
				for u := range inc.perUser {
					if !expansionsExact(inc.perUser[u], reb.perUser[u]) {
						t.Errorf("perUser[%d] expansions differ", u)
					}
				}
				if incInfo.CutRounds != rebInfo.CutRounds || incInfo.Constraints != rebInfo.Constraints {
					t.Errorf("solver trajectory diverged: %+v vs %+v", incInfo, rebInfo)
				}
			})
		}
	}
}
