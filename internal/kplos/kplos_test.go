package kplos

import (
	"math"
	"testing"

	"plos/internal/core"
	"plos/internal/kernel"
	"plos/internal/mat"
	"plos/internal/rng"
)

// linearUser builds a linearly separable two-Gaussian user.
func linearUser(g *rng.RNG, perClass, labeled int, theta float64) (core.UserData, []float64) {
	rot := rng.Rotation2D(theta)
	n := 2 * perClass
	x := mat.NewMatrix(n, 2)
	truth := make([]float64, n)
	for i := 0; i < n; i++ {
		cls := 1.0
		if i%2 == 1 {
			cls = -1
		}
		p := rot.MulVec(mat.Vector{cls*4 + g.Norm(), cls*4 + g.Norm()})
		copy(x.Row(i), p)
		truth[i] = cls
	}
	return core.UserData{X: x, Y: truth[:labeled]}, truth
}

// ringUser builds a radially separable dataset (inner disc vs outer ring) —
// impossible for a linear hyperplane through any feature budget of 2, easy
// for RBF.
func ringUser(g *rng.RNG, perClass, labeled int) (core.UserData, []float64) {
	n := 2 * perClass
	x := mat.NewMatrix(n, 2)
	truth := make([]float64, n)
	for i := 0; i < n; i++ {
		cls := 1.0
		radius := 0.5 + 0.3*g.Float64()
		if i%2 == 1 {
			cls = -1
			radius = 2.2 + 0.4*g.Float64()
		}
		angle := g.Float64() * 2 * math.Pi
		x.Set(i, 0, radius*math.Cos(angle))
		x.Set(i, 1, radius*math.Sin(angle))
		truth[i] = cls
	}
	return core.UserData{X: x, Y: truth[:labeled]}, truth
}

func accuracyOf(m *Model, t int, u core.UserData, truth []float64) float64 {
	correct := 0
	for i := 0; i < u.X.Rows; i++ {
		if m.PredictUser(t, u.X.Row(i)) == truth[i] {
			correct++
		}
	}
	return float64(correct) / float64(u.X.Rows)
}

func TestLinearKernelMatchesLinearSolver(t *testing.T) {
	g := rng.New(1)
	var users []core.UserData
	var truths [][]float64
	for i := 0; i < 3; i++ {
		labeled := 8
		if i == 2 {
			labeled = 0
		}
		u, truth := linearUser(g.SplitN("u", i), 15, labeled, 0)
		users = append(users, u)
		truths = append(truths, truth)
	}
	cfg := core.Config{Lambda: 50, Cl: 1, Cu: 0.2, Seed: 1}
	km, kinfo, err := Train(users, cfg, kernel.Linear{})
	if err != nil {
		t.Fatalf("kplos.Train: %v", err)
	}
	lm, _, err := core.TrainCentralized(users, cfg)
	if err != nil {
		t.Fatalf("core.TrainCentralized: %v", err)
	}
	if kinfo.Constraints == 0 || kinfo.CCCPIterations == 0 {
		t.Errorf("suspicious info: %+v", kinfo)
	}
	// Same algorithm, different init details — compare accuracy.
	var kAcc, lAcc float64
	for i := range users {
		kAcc += accuracyOf(km, i, users[i], truths[i])
		correct := 0
		for r := 0; r < users[i].X.Rows; r++ {
			if lm.PredictUser(i, users[i].X.Row(r)) == truths[i][r] {
				correct++
			}
		}
		lAcc += float64(correct) / float64(users[i].X.Rows)
	}
	kAcc /= float64(len(users))
	lAcc /= float64(len(users))
	if math.Abs(kAcc-lAcc) > 0.1 {
		t.Errorf("linear-kernel PLOS acc %v vs linear solver %v", kAcc, lAcc)
	}
	if kAcc < 0.85 {
		t.Errorf("linear-kernel accuracy = %v", kAcc)
	}
}

func TestRBFSolvesNonlinearTask(t *testing.T) {
	g := rng.New(2)
	var users []core.UserData
	var truths [][]float64
	for i := 0; i < 3; i++ {
		labeled := 10
		if i == 2 {
			labeled = 0
		}
		u, truth := ringUser(g.SplitN("u", i), 20, labeled)
		users = append(users, u)
		truths = append(truths, truth)
	}
	cfg := core.Config{Lambda: 50, Cl: 1, Cu: 0.2, Seed: 2}

	rbf, _, err := Train(users, cfg, kernel.RBF{Gamma: 1})
	if err != nil {
		t.Fatalf("RBF Train: %v", err)
	}
	lin, _, err := Train(users, cfg, kernel.Linear{})
	if err != nil {
		t.Fatalf("Linear Train: %v", err)
	}
	var rbfAcc, linAcc float64
	for i := range users {
		rbfAcc += accuracyOf(rbf, i, users[i], truths[i])
		linAcc += accuracyOf(lin, i, users[i], truths[i])
	}
	rbfAcc /= float64(len(users))
	linAcc /= float64(len(users))
	if rbfAcc < 0.9 {
		t.Errorf("RBF accuracy on rings = %v", rbfAcc)
	}
	if rbfAcc <= linAcc+0.2 {
		t.Errorf("RBF (%v) should dominate linear (%v) on radial classes", rbfAcc, linAcc)
	}
	// Zero-label user benefits too (the PLOS property, kernelized).
	if acc := accuracyOf(rbf, 2, users[2], truths[2]); acc < 0.85 {
		t.Errorf("zero-label user RBF accuracy = %v", acc)
	}
}

func TestPredictGlobalAndSupport(t *testing.T) {
	g := rng.New(3)
	u0, _ := ringUser(g.Split("a"), 15, 12)
	u1, _ := ringUser(g.Split("b"), 15, 12)
	m, _, err := Train([]core.UserData{u0, u1}, core.Config{Lambda: 100, Seed: 3}, kernel.RBF{Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumUsers() != 2 {
		t.Fatalf("NumUsers = %d", m.NumUsers())
	}
	// Deep inside the inner disc.
	if got := m.PredictGlobal(mat.Vector{0.1, 0.1}); got != 1 {
		t.Errorf("PredictGlobal(inner) = %v", got)
	}
	if got := m.PredictGlobal(mat.Vector{2.4, 0}); got != -1 {
		t.Errorf("PredictGlobal(outer) = %v", got)
	}
	if m.SupportSize(0) == 0 {
		t.Error("expected nonzero support")
	}
}

func TestTrainValidation(t *testing.T) {
	g := rng.New(4)
	u, _ := linearUser(g, 5, 4, 0)
	if _, _, err := Train(nil, core.Config{}, kernel.Linear{}); err == nil {
		t.Error("no users should error")
	}
	if _, _, err := Train([]core.UserData{u}, core.Config{}, nil); err == nil {
		t.Error("nil kernel should error")
	}
	bad := core.UserData{X: u.X, Y: []float64{5}}
	if _, _, err := Train([]core.UserData{bad}, core.Config{}, kernel.Linear{}); err == nil {
		t.Error("bad label should error")
	}
	empty := core.UserData{X: mat.NewMatrix(0, 2)}
	if _, _, err := Train([]core.UserData{empty}, core.Config{}, kernel.Linear{}); err == nil {
		t.Error("empty user should error")
	}
}

func TestAllUnlabeledAlternatingInit(t *testing.T) {
	// No labels at all: training must still run (balanced deterministic
	// init) and produce a nontrivial split.
	g := rng.New(5)
	u, truth := linearUser(g, 15, 0, 0)
	m, _, err := Train([]core.UserData{u}, core.Config{Lambda: 10, Seed: 5}, kernel.Linear{})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	acc := accuracyOf(m, 0, u, truth)
	if acc < 0.5 {
		acc = 1 - acc
	}
	if acc < 0.75 {
		t.Errorf("matched clustering accuracy = %v", acc)
	}
}

// Property: with the linear kernel, the model's decision values must equal
// the explicit w·x computation recovered from the expansions.
func TestPropertyLinearKernelScoresConsistent(t *testing.T) {
	g := rng.New(6)
	u0, _ := linearUser(g.Split("a"), 8, 6, 0)
	u1, _ := linearUser(g.Split("b"), 8, 6, 0.3)
	users := []core.UserData{u0, u1}
	m, _, err := Train(users, core.Config{Lambda: 20, Seed: 6}, kernel.Linear{})
	if err != nil {
		t.Fatal(err)
	}
	// Recover the explicit hyperplane of user t by probing with basis
	// vectors (valid exactly because the kernel is linear).
	dim := u0.X.Cols
	for ti := range users {
		w := make(mat.Vector, dim)
		for j := 0; j < dim; j++ {
			e := make(mat.Vector, dim)
			e[j] = 1
			w[j] = m.ScoreUser(ti, e)
		}
		probe := rng.New(int64(100 + ti))
		for trial := 0; trial < 25; trial++ {
			x := probe.NormVector(dim)
			want := w.Dot(x)
			got := m.ScoreUser(ti, x)
			if diff := want - got; diff > 1e-8 || diff < -1e-8 {
				t.Fatalf("user %d: score %v vs linear %v", ti, got, want)
			}
		}
	}
}
