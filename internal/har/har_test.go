package har

import (
	"testing"

	"plos/internal/rng"
	"plos/internal/svm"
)

func smallCfg() Config {
	return Config{Users: 5, PerClass: 30, Dim: 80, Informative: 20}
}

func TestGenerateShapes(t *testing.T) {
	ds, err := Generate(Config{Users: 3, PerClass: 10}, rng.New(1))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(ds.Users) != 3 {
		t.Fatalf("users = %d", len(ds.Users))
	}
	for i, u := range ds.Users {
		if u.X.Rows != 20 || u.X.Cols != 561 {
			t.Fatalf("user %d shape = %dx%d, want 20x561 (paper §VI-C)", i, u.X.Rows, u.X.Cols)
		}
	}
}

func TestGenerateInterleaved(t *testing.T) {
	ds, err := Generate(smallCfg(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range ds.Users[0].Truth {
		want := 1.0
		if i%2 == 1 {
			want = -1
		}
		if y != want {
			t.Fatalf("row %d label = %v", i, y)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(smallCfg(), rng.New(3))
	b, _ := Generate(smallCfg(), rng.New(3))
	if !a.Users[0].X.Equal(b.Users[0].X, 0) {
		t.Error("same seed should generate identical cohorts")
	}
}

func TestClassesLearnableButTight(t *testing.T) {
	// Sitting vs standing is "the least separable pair": a per-user SVM
	// should do clearly better than chance but stay below ceiling.
	ds, err := Generate(smallCfg(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range ds.Users {
		m, _, err := svm.Train(u.X, u.Truth, svm.Params{C: 1, MaxEpochs: 200})
		if err != nil {
			t.Fatalf("user %d: %v", i, err)
		}
		correct := 0
		for r := 0; r < u.X.Rows; r++ {
			if m.Predict(u.X.Row(r)) == u.Truth[r] {
				correct++
			}
		}
		acc := float64(correct) / float64(u.X.Rows)
		if acc < 0.75 {
			t.Errorf("user %d self accuracy = %v: class signal too weak", i, acc)
		}
	}
}

func TestUserShiftControlsHeterogeneity(t *testing.T) {
	// Larger UserShift must increase the self-vs-cross accuracy gap.
	gap := func(shift float64) float64 {
		cfg := smallCfg()
		cfg.UserShift = shift
		ds, err := Generate(cfg, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		models := make([]*svm.Model, len(ds.Users))
		for i, u := range ds.Users {
			m, _, err := svm.Train(u.X, u.Truth, svm.Params{C: 1, MaxEpochs: 200})
			if err != nil {
				t.Fatal(err)
			}
			models[i] = m
		}
		acc := func(m *svm.Model, u User) float64 {
			correct := 0
			for r := 0; r < u.X.Rows; r++ {
				if m.Predict(u.X.Row(r)) == u.Truth[r] {
					correct++
				}
			}
			return float64(correct) / float64(u.X.Rows)
		}
		var self, cross float64
		var crossN int
		for i := range ds.Users {
			self += acc(models[i], ds.Users[i])
			for j := range ds.Users {
				if i != j {
					cross += acc(models[i], ds.Users[j])
					crossN++
				}
			}
		}
		return self/float64(len(ds.Users)) - cross/float64(crossN)
	}
	small, large := gap(0.1), gap(1.5)
	if large <= small {
		t.Errorf("UserShift should widen the personalization gap: 0.1→%v, 1.5→%v", small, large)
	}
}

func TestInformativeClampedToDim(t *testing.T) {
	cfg := Config{Users: 1, PerClass: 5, Dim: 10, Informative: 50}
	ds, err := Generate(cfg, rng.New(6))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if ds.Users[0].X.Cols != 10 {
		t.Errorf("dim = %d", ds.Users[0].X.Cols)
	}
}

func TestGenerateMulti(t *testing.T) {
	ds, err := GenerateMulti(Config{Users: 3, PerClass: 10, Dim: 60, Informative: 20}, 6, rng.New(8))
	if err != nil {
		t.Fatalf("GenerateMulti: %v", err)
	}
	if ds.Classes != 6 || len(ds.Users) != 3 {
		t.Fatalf("shape: classes=%d users=%d", ds.Classes, len(ds.Users))
	}
	u := ds.Users[0]
	if u.X.Rows != 60 || u.X.Cols != 60 {
		t.Fatalf("user shape = %dx%d", u.X.Rows, u.X.Cols)
	}
	counts := map[int]int{}
	for i, c := range u.Truth {
		if c != i%6 {
			t.Fatalf("classes not cycled at %d", i)
		}
		counts[c]++
	}
	for c := 0; c < 6; c++ {
		if counts[c] != 10 {
			t.Fatalf("class %d count = %d", c, counts[c])
		}
	}
	if _, err := GenerateMulti(Config{}, 1, rng.New(1)); err == nil {
		t.Error("one class should error")
	}
}

func TestGenerateMultiSittingStandingHard(t *testing.T) {
	// The engineered 3-vs-4 pair must be closer than typical random pairs.
	ds, err := GenerateMulti(Config{Users: 1, PerClass: 30, Dim: 80, Informative: 20}, 6, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	u := ds.Users[0]
	centroid := func(cls int) []float64 {
		m := make([]float64, u.X.Cols)
		n := 0
		for i, c := range u.Truth {
			if c == cls {
				row := u.X.Row(i)
				for j := range m {
					m[j] += row[j]
				}
				n++
			}
		}
		for j := range m {
			m[j] /= float64(n)
		}
		return m
	}
	dist := func(a, b []float64) float64 {
		var s float64
		for j := range a {
			d := a[j] - b[j]
			s += d * d
		}
		return s
	}
	c := make([][]float64, 6)
	for i := range c {
		c[i] = centroid(i)
	}
	pairDist := dist(c[3], c[4])
	var others []float64
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			if i == 3 && j == 4 {
				continue
			}
			others = append(others, dist(c[i], c[j]))
		}
	}
	closer := 0
	for _, d := range others {
		if pairDist < d {
			closer++
		}
	}
	if closer < len(others)*3/4 {
		t.Errorf("sitting/standing should be among the closest pairs: beat %d of %d", closer, len(others))
	}
}
