// Package har simulates the UCI Human Activity Recognition dataset used in
// the paper's §VI-C — the data substitute documented in DESIGN.md §3 (the
// real corpus is not available offline). It reproduces the properties the
// experiments depend on:
//
//   - 30 users, 561-dimensional feature vectors;
//   - the sitting-vs-standing pair ("the least separable pair among the six
//     activities"): class prototypes live in a low-dimensional informative
//     subspace with moderate margin, the remaining dimensions are nuisance;
//   - ~50 samples per activity per user;
//   - per-user pattern shifts (offset + in-subspace rotation) that are
//     *smaller* than the body-sensor simulator's: waist-mounted smartphones
//     with fixed orientation embody fewer personal traits, which is why the
//     paper finds the All-vs-PLOS gap smaller on HAR than on body sensors.
package har

import (
	"fmt"
	"math"

	"plos/internal/mat"
	"plos/internal/rng"
)

// Config tunes the simulator; the zero value matches the paper's setup.
type Config struct {
	// Users is the cohort size (default 30).
	Users int
	// PerClass is the number of samples per activity per user (default 50).
	PerClass int
	// Dim is the feature dimensionality (default 561).
	Dim int
	// Informative is the size of the class-discriminative subspace
	// (default 40).
	Informative int
	// Separation scales the class margin along the informative dimensions
	// (default 0.22, putting the Bayes accuracy near 0.92 — sitting vs
	// standing is "the least separable pair" and the paper's HAR
	// accuracies live in the 60–95% band, not at ceiling).
	Separation float64
	// UserShift scales per-user heterogeneity (default 0.25; smartphones
	// fixed at the waist embody fewer personal traits than the
	// freely-placed body sensor nodes).
	UserShift float64
	// Noise is the within-class standard deviation (default 1).
	Noise float64
}

func (c Config) withDefaults() Config {
	if c.Users <= 0 {
		c.Users = 30
	}
	if c.PerClass <= 0 {
		c.PerClass = 50
	}
	if c.Dim <= 0 {
		c.Dim = 561
	}
	if c.Informative <= 0 {
		c.Informative = 40
	}
	if c.Informative > c.Dim {
		c.Informative = c.Dim
	}
	if c.Separation <= 0 {
		c.Separation = 0.22
	}
	if c.UserShift <= 0 {
		c.UserShift = 0.25
	}
	if c.Noise <= 0 {
		c.Noise = 1
	}
	return c
}

// User is one simulated participant: rows of X are feature vectors, Truth
// holds +1 for standing and −1 for sitting, interleaved so any prefix is
// class-balanced.
type User struct {
	X     *mat.Matrix
	Truth []float64
}

// Dataset is the simulated cohort.
type Dataset struct {
	Users []User
}

// Generate simulates the cohort deterministically from g.
func Generate(cfg Config, g *rng.RNG) (*Dataset, error) {
	cfg = cfg.withDefaults()
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("har: Generate: no users")
	}
	// Shared class prototypes: ±Separation along each informative axis,
	// mildly perturbed so axes are not identical.
	protoG := g.Split("prototype")
	proto := make(mat.Vector, cfg.Dim)
	for j := 0; j < cfg.Informative; j++ {
		proto[j] = cfg.Separation * (1 + 0.3*protoG.Norm())
	}

	ds := &Dataset{Users: make([]User, cfg.Users)}
	for u := 0; u < cfg.Users; u++ {
		ds.Users[u] = generateUser(cfg, proto, g.SplitN("har-user", u))
	}
	return ds, nil
}

// MultiUser is one participant of the full multi-activity task: Truth holds
// class indices in [0, classes).
type MultiUser struct {
	X     *mat.Matrix
	Truth []int
}

// MultiDataset is a simulated multi-activity cohort.
type MultiDataset struct {
	Users   []MultiUser
	Classes int
}

// GenerateMulti simulates the full HAR task (default six activities:
// walking, walking upstairs, walking downstairs, sitting, standing, laying)
// rather than the paper's single binary pair. Each activity has its own
// prototype in the informative subspace; sitting (3) and standing (4) are
// placed closest together, preserving "the least separable pair". Samples
// cycle through the classes so any prefix is balanced.
func GenerateMulti(cfg Config, classes int, g *rng.RNG) (*MultiDataset, error) {
	cfg = cfg.withDefaults()
	if classes < 2 {
		return nil, fmt.Errorf("har: GenerateMulti: need at least two classes, got %d", classes)
	}
	// Class prototypes: random well-spread directions, except the
	// sitting/standing pair (indices 3 and 4 when present), which are a
	// tight ±Separation split of one shared direction.
	protoG := g.Split("multi-prototype")
	protos := make([]mat.Vector, classes)
	for c := range protos {
		p := make(mat.Vector, cfg.Dim)
		for j := 0; j < cfg.Informative; j++ {
			p[j] = protoG.Gauss(0, 1.2)
		}
		protos[c] = p
	}
	if classes > 4 {
		shared := make(mat.Vector, cfg.Dim)
		split := make(mat.Vector, cfg.Dim)
		for j := 0; j < cfg.Informative; j++ {
			shared[j] = protoG.Gauss(0, 1.2)
			split[j] = cfg.Separation * (1 + 0.3*protoG.Norm())
		}
		protos[3] = mat.AddVec(shared, split)
		protos[4] = mat.SubVec(shared, split)
	}

	ds := &MultiDataset{Users: make([]MultiUser, cfg.Users), Classes: classes}
	for u := 0; u < cfg.Users; u++ {
		ds.Users[u] = generateMultiUser(cfg, protos, g.SplitN("har-multi-user", u))
	}
	return ds, nil
}

func generateMultiUser(cfg Config, protos []mat.Vector, g *rng.RNG) MultiUser {
	offset := make(mat.Vector, cfg.Informative)
	for j := range offset {
		offset[j] = g.Gauss(0, cfg.UserShift)
	}
	classes := len(protos)
	n := classes * cfg.PerClass
	x := mat.NewMatrix(n, cfg.Dim)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		cls := i % classes
		row := x.Row(i)
		for j := 0; j < cfg.Informative; j++ {
			row[j] = protos[cls][j] + offset[j] + g.Gauss(0, cfg.Noise)
		}
		for j := cfg.Informative; j < cfg.Dim; j++ {
			row[j] = g.Gauss(0, 1)
		}
		truth[i] = cls
	}
	return MultiUser{X: x, Truth: truth}
}

func generateUser(cfg Config, proto mat.Vector, g *rng.RNG) User {
	// Personal transform: an offset in the informative subspace plus a
	// rotation applied to consecutive coordinate pairs.
	offset := make(mat.Vector, cfg.Informative)
	for j := range offset {
		offset[j] = g.Gauss(0, cfg.UserShift)
	}
	theta := g.Gauss(0, cfg.UserShift*0.5)
	cosT, sinT := math.Cos(theta), math.Sin(theta)

	classMean := func(cls float64) mat.Vector {
		m := make(mat.Vector, cfg.Dim)
		for j := 0; j < cfg.Informative; j++ {
			m[j] = cls*proto[j] + offset[j]
		}
		// Rotate consecutive informative pairs by the personal angle.
		for j := 0; j+1 < cfg.Informative; j += 2 {
			a, b := m[j], m[j+1]
			m[j] = cosT*a - sinT*b
			m[j+1] = sinT*a + cosT*b
		}
		return m
	}
	means := map[float64]mat.Vector{1: classMean(1), -1: classMean(-1)}

	n := 2 * cfg.PerClass
	x := mat.NewMatrix(n, cfg.Dim)
	truth := make([]float64, n)
	for i := 0; i < n; i++ {
		cls := 1.0
		if i%2 == 1 {
			cls = -1
		}
		row := x.Row(i)
		m := means[cls]
		for j := 0; j < cfg.Informative; j++ {
			row[j] = m[j] + g.Gauss(0, cfg.Noise)
		}
		for j := cfg.Informative; j < cfg.Dim; j++ {
			row[j] = g.Gauss(0, 1) // nuisance dimensions
		}
		truth[i] = cls
	}
	return User{X: x, Truth: truth}
}
