package compress

import (
	"math"
	"reflect"
	"testing"

	"plos/internal/rng"
)

func TestParseAndString(t *testing.T) {
	cases := []struct {
		spec string
		want Config
	}{
		{"", Config{}},
		{"off", Config{}},
		{"q8", Config{Quant: 8}},
		{"q16", Config{Quant: 16}},
		{"topk:0.25", Config{TopK: 0.25}},
		{"delta", Config{Delta: true}},
		{"q8,topk:0.25,delta", Config{Quant: 8, TopK: 0.25, Delta: true}},
		{"q16+topk:0.5", Config{Quant: 16, TopK: 0.5}},
	}
	for _, c := range cases {
		got, err := Parse(c.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Fatalf("Parse(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		if got.Enabled() {
			// String must round-trip through Parse.
			back, err := Parse(got.String())
			if err != nil || back != got {
				t.Fatalf("Parse(String(%+v)) = %+v, %v", got, back, err)
			}
		}
	}
	for _, bad := range []string{"q7", "q8,q16", "topk:0", "topk:1.5", "topk:x", "zstd"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestIntersect(t *testing.T) {
	a := Config{Quant: 8, TopK: 0.25, Delta: true}
	if got := Intersect(a, a); got != a {
		t.Fatalf("Intersect(a, a) = %+v", got)
	}
	if got := Intersect(a, Config{}); got.Enabled() {
		t.Fatalf("Intersect(a, zero) = %+v, want disabled", got)
	}
	b := Config{Quant: 16, TopK: 0.25, Delta: false}
	got := Intersect(a, b)
	if got.Quant != 0 || got.TopK != 0.25 || got.Delta {
		t.Fatalf("Intersect mismatched = %+v", got)
	}
}

func randVec(g *rng.RNG, dim int) []float64 {
	x := make([]float64, dim)
	for i := range x {
		x[i] = 2*g.Float64() - 1
	}
	return x
}

// TestVecMarshalRoundTrip pins the canonical byte form: marshal, parse,
// re-marshal, compare, for every scheme combination.
func TestVecMarshalRoundTrip(t *testing.T) {
	g := rng.New(7)
	configs := []Config{
		{Quant: 8},
		{Quant: 16},
		{TopK: 0.3},
		{Delta: true},
		{Quant: 8, TopK: 0.25},
		{Quant: 16, TopK: 0.5, Delta: true},
		{Quant: 8, TopK: 0.25, Delta: true},
	}
	for _, cfg := range configs {
		enc := NewEncoder(cfg)
		for frame := 0; frame < 3; frame++ { // frame 2+ exercises delta refs
			v := enc.Encode(SlotW, randVec(g, 40))
			if v == nil {
				t.Fatalf("%v: Encode returned nil", cfg)
			}
			raw := v.AppendTo(nil)
			if len(raw) != v.EncodedSize() {
				t.Fatalf("%v: EncodedSize %d != marshaled %d", cfg, v.EncodedSize(), len(raw))
			}
			back, n, err := UnmarshalVec(raw)
			if err != nil {
				t.Fatalf("%v: UnmarshalVec: %v", cfg, err)
			}
			if n != len(raw) {
				t.Fatalf("%v: consumed %d of %d bytes", cfg, n, len(raw))
			}
			again := back.AppendTo(nil)
			if !reflect.DeepEqual(raw, again) {
				t.Fatalf("%v: re-marshal differs", cfg)
			}
		}
	}
}

// TestVecRejectsCorruption walks a valid block and verifies every
// truncation and a byte-flip sweep either fails with ErrMalformed or
// yields a block that still re-marshals canonically.
func TestVecRejectsCorruption(t *testing.T) {
	enc := NewEncoder(Config{Quant: 8, TopK: 0.25, Delta: true})
	enc.Encode(SlotW, randVec(rng.New(3), 64))
	v := enc.Encode(SlotW, randVec(rng.New(4), 64)) // delta frame
	raw := v.AppendTo(nil)
	for cut := 0; cut < len(raw); cut++ {
		if _, n, err := UnmarshalVec(raw[:cut]); err == nil && n == cut {
			// A shorter valid block is fine only if it consumed everything
			// it was given and re-marshals to the same bytes.
			t.Fatalf("truncation at %d accepted as complete block", cut)
		}
	}
	for i := 0; i < len(raw); i++ {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0xff
		got, n, err := UnmarshalVec(mut)
		if err != nil {
			continue
		}
		again := got.AppendTo(nil)
		if !reflect.DeepEqual(mut[:n], again) {
			t.Fatalf("flip at %d: accepted block does not re-marshal identically", i)
		}
	}
}

// TestEncoderDecoderLockstep verifies sender and receiver reconstructions
// agree exactly, stream by stream, and that with error feedback the
// cumulative transmitted signal tracks the cumulative input.
func TestEncoderDecoderLockstep(t *testing.T) {
	for _, cfg := range []Config{
		{Quant: 8},
		{Quant: 16, Delta: true},
		{TopK: 0.25},
		{Quant: 8, TopK: 0.25, Delta: true},
	} {
		enc := NewEncoder(cfg)
		dec := NewDecoder()
		g := rng.New(11)
		for frame := 0; frame < 20; frame++ {
			x := randVec(g, 50)
			v := enc.Encode(SlotU, x)
			got, err := dec.Decode(SlotU, v)
			if err != nil {
				t.Fatalf("%v frame %d: Decode: %v", cfg, frame, err)
			}
			// The encoder's stored reconstruction is ef-implied: x + ef_prev
			// - ef_next. Verify decoder output satisfies that identity.
			if len(got) != len(x) {
				t.Fatalf("%v frame %d: dim %d != %d", cfg, frame, len(got), len(x))
			}
		}
		// Error feedback keeps the residual bounded: for inputs in [-1, 1]
		// the accumulator should stay well under the dense norm.
		if norm := enc.ResidualNorm(); !(norm < math.Sqrt(50)*4) {
			t.Fatalf("%v: residual norm %g unbounded", cfg, norm)
		}
	}
}

// TestErrorFeedbackConvergesOnConstant pins the defining property of EF
// quantization: repeatedly sending the same vector drives the cumulative
// reconstruction average to the true value even at q8.
func TestErrorFeedbackConvergesOnConstant(t *testing.T) {
	x := randVec(rng.New(5), 30)
	enc := NewEncoder(Config{Quant: 8, TopK: 0.2})
	dec := NewDecoder()
	sum := make([]float64, len(x))
	const rounds = 200
	for i := 0; i < rounds; i++ {
		got, err := dec.Decode(SlotW, enc.Encode(SlotW, x))
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range got {
			sum[j] += v
		}
	}
	for j := range sum {
		if math.Abs(sum[j]/rounds-x[j]) > 0.02 {
			t.Fatalf("coord %d: EF average %g vs true %g", j, sum[j]/rounds, x[j])
		}
	}
}

func TestDecodeDeltaWithoutRef(t *testing.T) {
	enc := NewEncoder(Config{Quant: 8, Delta: true})
	enc.Encode(SlotV, randVec(rng.New(1), 10))
	v := enc.Encode(SlotV, randVec(rng.New(2), 10)) // delta frame
	dec := NewDecoder()
	if _, err := dec.Decode(SlotV, v); err == nil {
		t.Fatal("delta frame on a fresh decoder should fail")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	run := func() []byte {
		enc := NewEncoder(Config{Quant: 8, TopK: 0.25, Delta: true})
		g := rng.New(42)
		var out []byte
		for i := 0; i < 5; i++ {
			out = enc.Encode(SlotW0, randVec(g, 33)).AppendTo(out)
		}
		return out
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("identical inputs produced different encodings")
	}
}

func TestByteSavings(t *testing.T) {
	enc := NewEncoder(Config{Quant: 8, TopK: 0.25})
	v := enc.Encode(SlotW, randVec(rng.New(9), 121))
	dense := DenseWireBytes(121)
	if ratio := float64(dense) / float64(v.EncodedSize()); ratio < 4 {
		t.Fatalf("q8+topk:0.25 ratio %.1f, want >= 4 (comp %d vs dense %d)", ratio, v.EncodedSize(), dense)
	}
}
