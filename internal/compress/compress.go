// Package compress implements the codec v4 parameter-payload schemes of
// the wire protocol: linear int8/int16 quantization with error-feedback
// accumulators, top-k sparsification with varint gap-encoded indices, and
// delta coding against the last reconstruction of the same stream. The
// schemes compose (quantize the top-k entries of a delta, say) and are
// negotiated per connection in the hello exchange — see
// docs/WIRE_COMPRESSION.md.
//
// The package is pure state-machine math with a canonical byte form for
// one compressed vector (Vec); framing, negotiation and transport wiring
// live in internal/transport. Sender (Encoder) and receiver (Decoder)
// compute bit-identical reconstructions, which is what makes the
// error-feedback and delta references on the two ends agree.
package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Config selects the schemes applied to parameter payloads. The zero value
// disables compression entirely. It doubles as the capability block of the
// codec v4 hello negotiation: a client's hello carries its Config as the
// offer, the server's reply the intersected answer.
type Config struct {
	// Quant is the linear quantization width in bits: 0 (off), 8 or 16.
	// Quantized entries are sent as int8/int16 plus one float64 scale.
	Quant uint8
	// TopK keeps the ceil(TopK·dim) largest-magnitude coordinates of each
	// vector: 0 disables, otherwise (0, 1]. Dropped coordinates feed the
	// error-feedback accumulator, so they are sent eventually, not lost.
	TopK float64
	// Delta codes each vector against the stream's previous reconstruction,
	// so quantization sees small round-to-round residuals instead of raw
	// weights. By itself it saves no bytes — compose it with Quant/TopK.
	Delta bool
}

// Enabled reports whether the configuration compresses anything.
func (c Config) Enabled() bool { return c.Quant != 0 || c.TopK != 0 || c.Delta }

// Validate rejects widths and fractions the wire format cannot carry.
func (c Config) Validate() error {
	if c.Quant != 0 && c.Quant != 8 && c.Quant != 16 {
		return fmt.Errorf("compress: quantization width must be 0, 8 or 16, got %d", c.Quant)
	}
	if c.TopK < 0 || c.TopK > 1 {
		return fmt.Errorf("compress: top-k fraction must be in (0, 1], got %g", c.TopK)
	}
	return nil
}

// String renders the canonical flag form ("q8,topk:0.25,delta"; "off" when
// disabled) — the inverse of Parse.
func (c Config) String() string {
	if !c.Enabled() {
		return "off"
	}
	var parts []string
	if c.Quant != 0 {
		parts = append(parts, fmt.Sprintf("q%d", c.Quant))
	}
	if c.TopK != 0 {
		parts = append(parts, "topk:"+strconv.FormatFloat(c.TopK, 'g', -1, 64))
	}
	if c.Delta {
		parts = append(parts, "delta")
	}
	return strings.Join(parts, ",")
}

// Parse reads the composable -compress flag syntax: terms "q8", "q16",
// "topk:<fraction>" and "delta" joined by "," or "+" (both accepted so the
// flag reads naturally either way). "" and "off" mean disabled.
func Parse(spec string) (Config, error) {
	var c Config
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return c, nil
	}
	for _, term := range strings.FieldsFunc(spec, func(r rune) bool { return r == ',' || r == '+' }) {
		switch {
		case term == "q8", term == "q16":
			if c.Quant != 0 {
				return Config{}, fmt.Errorf("compress: %q: q8 and q16 are mutually exclusive", spec)
			}
			if term == "q8" {
				c.Quant = 8
			} else {
				c.Quant = 16
			}
		case strings.HasPrefix(term, "topk:"):
			f, err := strconv.ParseFloat(term[len("topk:"):], 64)
			if err != nil || f <= 0 || f > 1 {
				return Config{}, fmt.Errorf("compress: %q: top-k fraction must be in (0, 1]", term)
			}
			c.TopK = f
		case term == "delta":
			c.Delta = true
		default:
			return Config{}, fmt.Errorf("compress: unknown term %q (want q8, q16, topk:<f> or delta)", term)
		}
	}
	return c, nil
}

// Intersect returns the schemes both sides agree on: a quantization width
// or top-k fraction is active only when offered identically by both, delta
// when both enable it. The result of intersecting anything with the zero
// Config is the zero Config, which is how un-negotiated connections fall
// back to dense frames.
func Intersect(mine, offer Config) Config {
	var c Config
	if mine.Quant == offer.Quant {
		c.Quant = mine.Quant
	}
	if mine.TopK == offer.TopK {
		c.TopK = mine.TopK
	}
	c.Delta = mine.Delta && offer.Delta
	return c
}

// Scheme bits of a Vec: which transforms this particular vector carries.
// Delta is per-frame (the first vector of a stream has no reference and is
// coded raw even under a delta Config), so the bits travel with the data.
const (
	schemeQ8 byte = 1 << iota
	schemeQ16
	schemeTopK
	schemeDelta

	schemeMask = schemeQ8 | schemeQ16 | schemeTopK | schemeDelta
)

// Vec is one compressed parameter vector as it travels inside a codec v4
// frame. Exactly one byte string encodes a given Vec (canonical form), and
// every byte string UnmarshalVec accepts re-marshals to identical bytes —
// the same contract the surrounding message codec keeps.
//
// Layout (little-endian):
//
//	dim u32 | scheme byte | [scale f64 if quantized] |
//	[k u32 + k uvarint index gaps if top-k] | values
//
// where values are k (or dim without top-k) entries of int8 (q8), int16
// (q16) or f64 bits (unquantized), and index gaps are successive
// differences of the strictly increasing kept indices, offset so every gap
// is >= 1 (first gap = index+1). Varints must be minimal-length.
type Vec struct {
	Dim    int
	Scheme byte
	// Scale is the quantization step (meaningful iff a quant bit is set):
	// value = Q[i] · Scale.
	Scale float64
	// Index holds the kept coordinates, strictly increasing (iff top-k).
	Index []int32
	// Q holds quantized entries (iff quantized), F raw entries otherwise;
	// the populated one has len == len(Index), or Dim without top-k.
	Q []int16
	F []float64
}

// ErrMalformed wraps every malformed-block error from UnmarshalVec.
var ErrMalformed = errors.New("compress: malformed block")

// maxDim bounds a single vector (2^24 entries = 128 MiB dense); real model
// exchanges are thousands of entries. The message codec's frame limit is
// the effective bound — this one only keeps arithmetic comfortable.
const maxDim = 1 << 24

func (v *Vec) nnz() int {
	if v.Scheme&schemeTopK != 0 {
		return len(v.Index)
	}
	return v.Dim
}

// EncodedSize returns the exact marshaled size in bytes.
func (v *Vec) EncodedSize() int {
	size := 4 + 1 // dim + scheme
	if v.Scheme&(schemeQ8|schemeQ16) != 0 {
		size += 8
	}
	if v.Scheme&schemeTopK != 0 {
		size += 4
		prev := int32(-1)
		for _, ix := range v.Index {
			size += uvarintLen(uint64(ix - prev))
			prev = ix
		}
	}
	switch {
	case v.Scheme&schemeQ8 != 0:
		size += v.nnz()
	case v.Scheme&schemeQ16 != 0:
		size += 2 * v.nnz()
	default:
		size += 8 * v.nnz()
	}
	return size
}

// AppendTo appends the canonical byte form to buf and returns the result.
func (v *Vec) AppendTo(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(v.Dim))
	buf = append(buf, v.Scheme)
	if v.Scheme&(schemeQ8|schemeQ16) != 0 {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Scale))
	}
	if v.Scheme&schemeTopK != 0 {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.Index)))
		prev := int32(-1)
		for _, ix := range v.Index {
			buf = binary.AppendUvarint(buf, uint64(ix-prev))
			prev = ix
		}
	}
	switch {
	case v.Scheme&schemeQ8 != 0:
		for _, q := range v.Q {
			buf = append(buf, byte(int8(q)))
		}
	case v.Scheme&schemeQ16 != 0:
		for _, q := range v.Q {
			buf = binary.LittleEndian.AppendUint16(buf, uint16(q))
		}
	default:
		for _, f := range v.F {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
		}
	}
	return buf
}

// uvarintLen is the minimal varint encoding length of x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// UnmarshalVec parses one Vec from the front of data, returning the vector
// and the bytes consumed. Every length is validated against the remaining
// input before allocation, varints must be minimal, indices strictly
// increasing below dim — so corruption anywhere is rejected, never
// misparsed, and an accepted prefix re-marshals byte-identically.
func UnmarshalVec(data []byte) (*Vec, int, error) {
	off := 0
	if len(data) < 5 {
		return nil, 0, fmt.Errorf("%w: truncated header", ErrMalformed)
	}
	dim := binary.LittleEndian.Uint32(data)
	scheme := data[4]
	off = 5
	if dim == 0 || dim > maxDim {
		return nil, 0, fmt.Errorf("%w: vector dim %d", ErrMalformed, dim)
	}
	if scheme&^schemeMask != 0 {
		return nil, 0, fmt.Errorf("%w: unknown scheme bits 0x%02x", ErrMalformed, scheme)
	}
	// A zero scheme byte is legal: it is the raw full-vector form a delta
	// stream's first frame takes before a reference exists.
	if scheme&schemeQ8 != 0 && scheme&schemeQ16 != 0 {
		return nil, 0, fmt.Errorf("%w: both q8 and q16 bits set", ErrMalformed)
	}
	v := &Vec{Dim: int(dim), Scheme: scheme}
	if scheme&(schemeQ8|schemeQ16) != 0 {
		if len(data)-off < 8 {
			return nil, 0, fmt.Errorf("%w: truncated scale", ErrMalformed)
		}
		v.Scale = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
	}
	nnz := int(dim)
	if scheme&schemeTopK != 0 {
		if len(data)-off < 4 {
			return nil, 0, fmt.Errorf("%w: truncated top-k count", ErrMalformed)
		}
		k := binary.LittleEndian.Uint32(data[off:])
		off += 4
		if k == 0 || k > dim {
			return nil, 0, fmt.Errorf("%w: top-k count %d of dim %d", ErrMalformed, k, dim)
		}
		if int(k) > len(data)-off { // each gap is at least one byte
			return nil, 0, fmt.Errorf("%w: top-k count %d exceeds remaining %d bytes", ErrMalformed, k, len(data)-off)
		}
		v.Index = make([]int32, k)
		prev := int32(-1)
		for i := range v.Index {
			gap, n := binary.Uvarint(data[off:])
			if n <= 0 || uvarintLen(gap) != n {
				return nil, 0, fmt.Errorf("%w: index gap %d is truncated or non-minimal", ErrMalformed, i)
			}
			off += n
			ix := int64(prev) + int64(gap)
			if gap == 0 || ix >= int64(dim) {
				return nil, 0, fmt.Errorf("%w: index %d out of order or out of range", ErrMalformed, i)
			}
			v.Index[i] = int32(ix)
			prev = int32(ix)
		}
		nnz = int(k)
	}
	switch {
	case scheme&schemeQ8 != 0:
		if nnz > len(data)-off {
			return nil, 0, fmt.Errorf("%w: %d q8 values exceed remaining %d bytes", ErrMalformed, nnz, len(data)-off)
		}
		v.Q = make([]int16, nnz)
		for i := range v.Q {
			v.Q[i] = int16(int8(data[off]))
			off++
		}
	case scheme&schemeQ16 != 0:
		if nnz > (len(data)-off)/2 {
			return nil, 0, fmt.Errorf("%w: %d q16 values exceed remaining %d bytes", ErrMalformed, nnz, len(data)-off)
		}
		v.Q = make([]int16, nnz)
		for i := range v.Q {
			v.Q[i] = int16(binary.LittleEndian.Uint16(data[off:]))
			off += 2
		}
	default:
		if nnz > (len(data)-off)/8 {
			return nil, 0, fmt.Errorf("%w: %d values exceed remaining %d bytes", ErrMalformed, nnz, len(data)-off)
		}
		v.F = make([]float64, nnz)
		for i := range v.F {
			v.F[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
			off += 8
		}
	}
	return v, off, nil
}

// Slot identifies one parameter stream within a connection direction. The
// error-feedback accumulator and delta reference are per slot, so the four
// vector fields of a message never share state.
type Slot int

const (
	SlotW0 Slot = iota
	SlotU
	SlotW
	SlotV
	numSlots
)

// DenseWireBytes is the wire-estimate size of a dense vector payload (the
// 8-bytes-per-entry convention of Message.WireSize), used for raw-vs-
// compressed accounting.
func DenseWireBytes(dim int) int { return 8 * dim }

type encState struct {
	ef  []float64 // error-feedback accumulator, x domain
	ref []float64 // last reconstruction (delta base), nil before first frame
}

// Encoder is the sender half of one connection direction: it owns the
// per-slot error-feedback accumulators and delta references. Not safe for
// concurrent use — a connection direction has exactly one sender.
type Encoder struct {
	cfg Config
	st  [numSlots]encState
}

// NewEncoder creates an encoder for the negotiated configuration.
func NewEncoder(cfg Config) *Encoder { return &Encoder{cfg: cfg} }

// Encode compresses x on the given stream and advances the stream state
// (error feedback absorbs this frame's loss; the delta reference becomes
// this frame's reconstruction). x is not mutated. A disabled configuration
// or empty input returns nil, leaving the stream untouched.
func (e *Encoder) Encode(slot Slot, x []float64) *Vec {
	if e == nil || !e.cfg.Enabled() || len(x) == 0 {
		return nil
	}
	st := &e.st[slot]
	if len(st.ef) != len(x) {
		// First frame, or the stream's dimension changed (a new training
		// run on a reused connection): start fresh.
		st.ef = make([]float64, len(x))
		st.ref = nil
	}
	dim := len(x)
	work := make([]float64, dim)
	for i, xi := range x {
		work[i] = xi + st.ef[i]
	}
	v := &Vec{Dim: dim}
	target := work
	if e.cfg.Delta && st.ref != nil {
		v.Scheme |= schemeDelta
		target = make([]float64, dim)
		for i := range work {
			target[i] = work[i] - st.ref[i]
		}
	}
	idx := denseIndices(dim)
	if e.cfg.TopK > 0 {
		if k := topkCount(e.cfg.TopK, dim); k < dim {
			v.Scheme |= schemeTopK
			idx = topkIndices(target, k)
			v.Index = idx
		}
	}
	kept := make([]float64, len(idx))
	for i, ix := range idx {
		kept[i] = target[ix]
	}
	recon := make([]float64, dim)
	switch e.cfg.Quant {
	case 8, 16:
		if e.cfg.Quant == 8 {
			v.Scheme |= schemeQ8
		} else {
			v.Scheme |= schemeQ16
		}
		v.Scale, v.Q = quantize(kept, e.cfg.Quant)
		for i, ix := range idx {
			recon[ix] = float64(v.Q[i]) * v.Scale
		}
	default:
		v.F = kept
		for i, ix := range idx {
			recon[ix] = kept[i]
		}
	}
	if v.Scheme&schemeDelta != 0 {
		for i := range recon {
			recon[i] += st.ref[i]
		}
	}
	for i := range work {
		st.ef[i] = work[i] - recon[i]
	}
	if e.cfg.Delta {
		st.ref = recon
	}
	return v
}

// ResidualNorm is the L2 norm of the error-feedback accumulators across
// all slots — the quant_error_feedback_norm gauge.
func (e *Encoder) ResidualNorm() float64 {
	if e == nil {
		return 0
	}
	sum := 0.0
	for s := range e.st {
		for _, r := range e.st[s].ef {
			sum += r * r
		}
	}
	return math.Sqrt(sum)
}

func denseIndices(dim int) []int32 {
	idx := make([]int32, dim)
	for i := range idx {
		idx[i] = int32(i)
	}
	return idx
}

func topkCount(frac float64, dim int) int {
	k := int(math.Ceil(frac * float64(dim)))
	if k < 1 {
		k = 1
	}
	if k > dim {
		k = dim
	}
	return k
}

// topkIndices returns the k indices of largest |x|, ascending. Ties break
// toward the lower index, so selection is deterministic.
func topkIndices(x []float64, k int) []int32 {
	ord := denseIndices(len(x))
	sort.Slice(ord, func(a, b int) bool {
		va, vb := math.Abs(x[ord[a]]), math.Abs(x[ord[b]])
		if va != vb {
			return va > vb
		}
		return ord[a] < ord[b]
	})
	idx := append([]int32(nil), ord[:k]...)
	sort.Slice(idx, func(a, b int) bool { return idx[a] < idx[b] })
	return idx
}

// quantize maps kept values onto the signed grid of the given width with a
// shared scale = maxAbs/qmax. Rounding is math.Round and out-of-grid
// results (NaN/Inf inputs) clamp, so the mapping is deterministic.
func quantize(kept []float64, width uint8) (float64, []int16) {
	qmax := 127.0
	if width == 16 {
		qmax = 32767
	}
	maxAbs := 0.0
	for _, f := range kept {
		if a := math.Abs(f); a > maxAbs {
			maxAbs = a
		}
	}
	scale := maxAbs / qmax
	q := make([]int16, len(kept))
	if scale == 0 {
		return 0, q
	}
	for i, f := range kept {
		qf := math.Round(f / scale)
		if !(qf >= -qmax) { // catches NaN too
			qf = -qmax
		} else if qf > qmax {
			qf = qmax
		}
		q[i] = int16(qf)
	}
	return scale, q
}

// ErrNoDeltaRef is returned when a delta-coded frame arrives on a stream
// with no prior reconstruction to apply it to — a protocol violation (the
// encoder only sets the delta bit once a reference exists).
var ErrNoDeltaRef = errors.New("compress: delta frame without a reference")

// Decoder is the receiver half of one connection direction: it replays the
// encoder's reconstructions, keeping the delta references in lockstep. Not
// safe for concurrent use — a direction has exactly one receiver.
type Decoder struct {
	ref [numSlots][]float64
}

// NewDecoder creates a decoder. The configuration needs no parameters:
// every frame describes its own transforms via the scheme bits.
func NewDecoder() *Decoder { return &Decoder{} }

// Decode reconstructs the vector carried by v on the given stream and
// advances the delta reference. The result is freshly allocated.
func (d *Decoder) Decode(slot Slot, v *Vec) ([]float64, error) {
	if v == nil {
		return nil, nil
	}
	if v.Dim <= 0 || v.Dim > maxDim {
		return nil, fmt.Errorf("%w: vector dim %d", ErrMalformed, v.Dim)
	}
	recon := make([]float64, v.Dim)
	idx := v.Index
	if v.Scheme&schemeTopK == 0 {
		idx = denseIndices(v.Dim)
	}
	if v.Scheme&(schemeQ8|schemeQ16) != 0 {
		if len(v.Q) != len(idx) {
			return nil, fmt.Errorf("%w: %d quantized values for %d indices", ErrMalformed, len(v.Q), len(idx))
		}
		for i, ix := range idx {
			if ix < 0 || int(ix) >= v.Dim {
				return nil, fmt.Errorf("%w: index %d out of range", ErrMalformed, ix)
			}
			recon[ix] = float64(v.Q[i]) * v.Scale
		}
	} else {
		if len(v.F) != len(idx) {
			return nil, fmt.Errorf("%w: %d values for %d indices", ErrMalformed, len(v.F), len(idx))
		}
		for i, ix := range idx {
			if ix < 0 || int(ix) >= v.Dim {
				return nil, fmt.Errorf("%w: index %d out of range", ErrMalformed, ix)
			}
			recon[ix] = v.F[i]
		}
	}
	if v.Scheme&schemeDelta != 0 {
		ref := d.ref[slot]
		if len(ref) != v.Dim {
			return nil, ErrNoDeltaRef
		}
		for i := range recon {
			recon[i] += ref[i]
		}
	}
	d.ref[slot] = recon
	return append([]float64(nil), recon...), nil
}
