// Package kernel provides the kernel functions and cached Gram machinery
// for kernelized PLOS (internal/kplos). The paper derives its stacked
// feature map Φ precisely so that "the kernel as described in [33]"
// (Evgeniou & Pontil's regularized multi-task kernel) applies; the linear
// solver in internal/core exploits the structure analytically, while
// internal/kplos runs the same algorithm for arbitrary base kernels.
package kernel

import (
	"fmt"
	"math"

	"plos/internal/mat"
	"plos/internal/parallel"
)

// Kernel is a positive-definite similarity k(x, y).
type Kernel interface {
	Eval(x, y mat.Vector) float64
	// Name identifies the kernel in diagnostics.
	Name() string
}

// Linear is the plain inner product; kernelized PLOS with Linear matches
// the analytic linear solver (a cross-check the tests exploit).
type Linear struct{}

// Eval returns x·y.
func (Linear) Eval(x, y mat.Vector) float64 { return x.Dot(y) }

// Name implements Kernel.
func (Linear) Name() string { return "linear" }

// RBF is the Gaussian kernel exp(−γ·||x−y||²).
type RBF struct {
	// Gamma is the inverse-width parameter; must be positive.
	Gamma float64
}

// Eval returns exp(−γ||x−y||²).
func (k RBF) Eval(x, y mat.Vector) float64 {
	return math.Exp(-k.Gamma * mat.SquaredDist(x, y))
}

// Name implements Kernel.
func (k RBF) Name() string { return fmt.Sprintf("rbf(γ=%g)", k.Gamma) }

// Polynomial is (x·y + c)^d.
type Polynomial struct {
	Degree int
	C      float64
}

// Eval returns (x·y + c)^degree.
func (k Polynomial) Eval(x, y mat.Vector) float64 {
	return math.Pow(x.Dot(y)+k.C, float64(k.Degree))
}

// Name implements Kernel.
func (k Polynomial) Name() string { return fmt.Sprintf("poly(d=%d,c=%g)", k.Degree, k.C) }

// Gram is the full kernel matrix over a concatenated multi-user sample set,
// with an index that maps (user, local sample) to a global row.
type Gram struct {
	k      *mat.Matrix
	offset []int // offset[t] is user t's first global index
	total  int
}

// NewGram evaluates the kernel over all samples of all users. users[t] is
// user t's sample matrix (rows are samples). Memory is O(N²) for N total
// samples — the centralized setting the paper's kernel remark lives in.
// Construction uses the full worker pool; NewGramWorkers takes the knob.
func NewGram(users []*mat.Matrix, k Kernel) (*Gram, error) {
	return NewGramWorkers(users, k, 0)
}

// NewGramWorkers is NewGram with a bounded worker pool: rows of the kernel
// matrix are evaluated concurrently on up to workers goroutines (0 means
// runtime.GOMAXPROCS(0), 1 is sequential). Row i owns the cells (i, j>=i)
// and their mirrors, so goroutines write disjoint cells and the resulting
// matrix is bit-identical for any worker count.
func NewGramWorkers(users []*mat.Matrix, k Kernel, workers int) (*Gram, error) {
	if len(users) == 0 {
		return nil, fmt.Errorf("kernel: NewGram: no users")
	}
	offset := make([]int, len(users))
	total := 0
	for t, u := range users {
		if u == nil || u.Rows == 0 {
			return nil, fmt.Errorf("kernel: NewGram: user %d has no samples", t)
		}
		offset[t] = total
		total += u.Rows
	}
	all := make([]mat.Vector, 0, total)
	for _, u := range users {
		for i := 0; i < u.Rows; i++ {
			all = append(all, u.Row(i))
		}
	}
	km := mat.NewMatrix(total, total)
	parallel.Do(workers, total, func(i int) {
		for j := i; j < total; j++ {
			v := k.Eval(all[i], all[j])
			km.Set(i, j, v)
			km.Set(j, i, v)
		}
	})
	return &Gram{k: km, offset: offset, total: total}, nil
}

// Index returns the global index of user t's sample i.
func (g *Gram) Index(t, i int) int { return g.offset[t] + i }

// At returns K(global i, global j).
func (g *Gram) At(i, j int) float64 { return g.k.At(i, j) }

// Total returns the number of samples indexed.
func (g *Gram) Total() int { return g.total }

// Expansion is an RKHS vector represented as Σ_i Coeff[i]·Φ(sample_i) in
// global sample indices. Constraint aggregates and hyperplanes of
// kernelized PLOS are Expansions.
type Expansion struct {
	Idx   []int
	Coeff []float64
}

// Dot returns the RKHS inner product of two expansions under the Gram.
func (g *Gram) Dot(a, b Expansion) float64 {
	var s float64
	for p, i := range a.Idx {
		ci := a.Coeff[p]
		if ci == 0 {
			continue
		}
		row := g.k.Data[i*g.total:]
		for q, j := range b.Idx {
			s += ci * b.Coeff[q] * row[j]
		}
	}
	return s
}

// DotSample returns ⟨a, Φ(sample j)⟩ for global index j.
func (g *Gram) DotSample(a Expansion, j int) float64 {
	var s float64
	for p, i := range a.Idx {
		s += a.Coeff[p] * g.k.At(i, j)
	}
	return s
}
