package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"plos/internal/mat"
)

func TestKernelValues(t *testing.T) {
	x := mat.Vector{1, 2}
	y := mat.Vector{3, -1}
	tests := []struct {
		name string
		k    Kernel
		want float64
	}{
		{"linear", Linear{}, 1},
		{"rbf", RBF{Gamma: 0.5}, math.Exp(-0.5 * 13)}, // ||x−y||² = 4 + 9
		{"poly", Polynomial{Degree: 2, C: 1}, 4},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.k.Eval(x, y); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Eval = %v, want %v", got, tc.want)
			}
		})
	}
	if (RBF{Gamma: 1}).Eval(x, x) != 1 {
		t.Error("RBF(x,x) should be 1")
	}
	for _, k := range []Kernel{Linear{}, RBF{Gamma: 1}, Polynomial{Degree: 3, C: 1}} {
		if k.Name() == "" {
			t.Error("kernel must have a name")
		}
	}
}

// Property: kernels are symmetric, and RBF is bounded in (0, 1].
func TestPropertyKernelSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := mat.Vector{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		y := mat.Vector{r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		for _, k := range []Kernel{Linear{}, RBF{Gamma: 0.7}, Polynomial{Degree: 2, C: 1}} {
			if math.Abs(k.Eval(x, y)-k.Eval(y, x)) > 1e-12 {
				return false
			}
		}
		rbf := RBF{Gamma: 0.7}.Eval(x, y)
		return rbf > 0 && rbf <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func makeGram(t *testing.T) *Gram {
	t.Helper()
	u0 := mat.FromRows([][]float64{{1, 0}, {0, 1}})
	u1 := mat.FromRows([][]float64{{1, 1}})
	g, err := NewGram([]*mat.Matrix{u0, u1}, Linear{})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGramIndexing(t *testing.T) {
	g := makeGram(t)
	if g.Total() != 3 {
		t.Fatalf("Total = %d", g.Total())
	}
	if g.Index(0, 1) != 1 || g.Index(1, 0) != 2 {
		t.Error("global indexing wrong")
	}
	// K entries: rows (1,0),(0,1),(1,1) under the linear kernel.
	if g.At(0, 2) != 1 || g.At(1, 2) != 1 || g.At(0, 1) != 0 || g.At(2, 2) != 2 {
		t.Errorf("kernel entries wrong")
	}
}

func TestGramErrors(t *testing.T) {
	if _, err := NewGram(nil, Linear{}); err == nil {
		t.Error("no users should error")
	}
	if _, err := NewGram([]*mat.Matrix{mat.NewMatrix(0, 2)}, Linear{}); err == nil {
		t.Error("empty user should error")
	}
}

func TestExpansionDots(t *testing.T) {
	g := makeGram(t)
	// a = Φ(s0) + 2Φ(s1); b = Φ(s2).
	a := Expansion{Idx: []int{0, 1}, Coeff: []float64{1, 2}}
	b := Expansion{Idx: []int{2}, Coeff: []float64{1}}
	// Under linear kernel: a maps to (1,0)+2(0,1) = (1,2); b = (1,1).
	if got := g.Dot(a, b); got != 3 {
		t.Errorf("Dot = %v, want 3", got)
	}
	if got := g.Dot(a, a); got != 5 {
		t.Errorf("Dot(a,a) = %v, want 5", got)
	}
	if got := g.DotSample(a, 2); got != 3 {
		t.Errorf("DotSample = %v, want 3", got)
	}
}

// Property: under the linear kernel, expansion dots agree with the explicit
// vector-space computation.
func TestPropertyLinearExpansionConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(6) + 2
		x := mat.NewMatrix(n, 3)
		for i := range x.Data {
			x.Data[i] = r.NormFloat64()
		}
		g, err := NewGram([]*mat.Matrix{x}, Linear{})
		if err != nil {
			return false
		}
		a := Expansion{}
		b := Expansion{}
		va := mat.NewVector(3)
		vb := mat.NewVector(3)
		for i := 0; i < n; i++ {
			ca, cb := r.NormFloat64(), r.NormFloat64()
			a.Idx = append(a.Idx, i)
			a.Coeff = append(a.Coeff, ca)
			b.Idx = append(b.Idx, i)
			b.Coeff = append(b.Coeff, cb)
			va.AddScaled(ca, x.Row(i))
			vb.AddScaled(cb, x.Row(i))
		}
		return math.Abs(g.Dot(a, b)-va.Dot(vb)) < 1e-8*(1+math.Abs(va.Dot(vb)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
