// Package dataset generates the synthetic workloads of the paper's §VI-D
// and §VI-E: two-class 2-D Gaussian data with label noise, replicated into
// a user population by rotating each user's copy around the origin.
//
// Paper parameters, reproduced as the defaults:
//
//	class +1 ~ N(μ = (10, 10),  Σ = [[225, −180], [−180, 225]])
//	class −1 ~ N(μ = (−10, −10), Σ)
//	200 points per class, 10% of the ground-truth labels flipped,
//	users t = 0..T−1 rotated by uniformly spaced angles in [0, maxAngle].
package dataset

import (
	"fmt"

	"plos/internal/mat"
	"plos/internal/rng"
)

// SynthConfig configures the generator. The zero value reproduces the
// paper's setup.
type SynthConfig struct {
	// PerClass is the number of points per class per user (default 200).
	PerClass int
	// Mean is the +1 class mean; the −1 class uses its negation
	// (default (10, 10)).
	Mean mat.Vector
	// Cov is the shared class covariance (default [[225,−180],[−180,225]]).
	Cov *mat.Matrix
	// FlipFraction is the label-noise rate: 0 selects the paper's default
	// of 0.10; pass a negative value for noise-free labels.
	FlipFraction float64
}

func (c SynthConfig) withDefaults() SynthConfig {
	if c.PerClass <= 0 {
		c.PerClass = 200
	}
	if c.Mean == nil {
		c.Mean = mat.Vector{10, 10}
	}
	if c.Cov == nil {
		c.Cov = mat.FromRows([][]float64{{225, -180}, {-180, 225}})
	}
	if c.FlipFraction == 0 {
		c.FlipFraction = 0.10
	} else if c.FlipFraction < 0 {
		c.FlipFraction = 0
	}
	return c
}

// User is one generated user's dataset with ground truth.
type User struct {
	// X rows are the samples; Truth has one ±1 entry per row (after label
	// flipping, i.e. what an annotator would report).
	X     *mat.Matrix
	Truth []float64
	// Angle is the rotation this user's data was generated with.
	Angle float64
}

// Population generates T users whose data are rotations of the base
// distribution with uniformly spaced angles in [0, maxAngle] (paper §VI-D:
// "with a given maximum rotation angle, we can generate 10 users with
// uniform rotation angles"). Samples are interleaved +1/−1 so that any
// prefix contains both classes.
func Population(tCount int, maxAngle float64, cfg SynthConfig, g *rng.RNG) ([]User, error) {
	if tCount <= 0 {
		return nil, fmt.Errorf("dataset: Population: need at least one user, got %d", tCount)
	}
	cfg = cfg.withDefaults()
	posMVN, err := rng.NewMVN(cfg.Mean, cfg.Cov)
	if err != nil {
		return nil, fmt.Errorf("dataset: Population: covariance: %w", err)
	}
	negMean := cfg.Mean.Clone()
	negMean.Scale(-1)
	negMVN, err := rng.NewMVN(negMean, cfg.Cov)
	if err != nil {
		return nil, fmt.Errorf("dataset: Population: covariance: %w", err)
	}

	users := make([]User, tCount)
	for t := 0; t < tCount; t++ {
		angle := 0.0
		if tCount > 1 {
			angle = maxAngle * float64(t) / float64(tCount-1)
		}
		users[t] = generateUser(posMVN, negMVN, angle, cfg, g.SplitN("synth-user", t))
	}
	return users, nil
}

func generateUser(pos, neg *rng.MVN, angle float64, cfg SynthConfig, g *rng.RNG) User {
	rot := rng.Rotation2D(angle)
	n := 2 * cfg.PerClass
	x := mat.NewMatrix(n, pos.Dim())
	truth := make([]float64, n)
	for i := 0; i < n; i++ {
		cls := 1.0
		sampler := pos
		if i%2 == 1 {
			cls = -1
			sampler = neg
		}
		p := rot.MulVec(sampler.Sample(g))
		copy(x.Row(i), p)
		truth[i] = cls
	}
	// Flip a random fraction of the labels (the annotator noise of the
	// paper: "we randomly swap 10% of the ground truth labels").
	flips := int(cfg.FlipFraction * float64(n))
	for _, i := range g.SampleWithoutReplacement(n, flips) {
		truth[i] = -truth[i]
	}
	return User{X: x, Truth: truth, Angle: angle}
}

// Split marks the first `labeled` samples of the user as labeled and
// returns (X, Y-prefix, full truth). Because classes are interleaved, the
// labeled prefix is class-balanced.
func (u User) Split(labeled int) (*mat.Matrix, []float64, []float64) {
	if labeled > len(u.Truth) {
		labeled = len(u.Truth)
	}
	return u.X, u.Truth[:labeled], u.Truth
}
