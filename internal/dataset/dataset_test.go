package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"plos/internal/mat"
	"plos/internal/rng"
)

func TestPopulationDefaults(t *testing.T) {
	users, err := Population(10, math.Pi/2, SynthConfig{}, rng.New(1))
	if err != nil {
		t.Fatalf("Population: %v", err)
	}
	if len(users) != 10 {
		t.Fatalf("users = %d", len(users))
	}
	for i, u := range users {
		if u.X.Rows != 400 || u.X.Cols != 2 {
			t.Fatalf("user %d shape = %dx%d", i, u.X.Rows, u.X.Cols)
		}
		if len(u.Truth) != 400 {
			t.Fatalf("user %d truth length = %d", i, len(u.Truth))
		}
	}
	// Angles uniformly spaced over [0, π/2].
	if users[0].Angle != 0 {
		t.Errorf("first angle = %v", users[0].Angle)
	}
	if math.Abs(users[9].Angle-math.Pi/2) > 1e-12 {
		t.Errorf("last angle = %v", users[9].Angle)
	}
	step := users[1].Angle - users[0].Angle
	for i := 2; i < 10; i++ {
		if math.Abs((users[i].Angle-users[i-1].Angle)-step) > 1e-9 {
			t.Errorf("angles not uniform at %d", i)
		}
	}
}

func TestPopulationErrors(t *testing.T) {
	if _, err := Population(0, 0, SynthConfig{}, rng.New(1)); err == nil {
		t.Error("0 users should error")
	}
	bad := SynthConfig{Cov: mat.FromRows([][]float64{{1, 3}, {3, 1}})}
	if _, err := Population(2, 0, bad, rng.New(1)); err == nil {
		t.Error("indefinite covariance should error")
	}
}

func TestPopulationDeterministic(t *testing.T) {
	a, err := Population(3, 1, SynthConfig{PerClass: 10}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Population(3, 1, SynthConfig{PerClass: 10}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].X.Equal(b[i].X, 0) {
			t.Fatal("same seed should generate identical data")
		}
	}
}

func TestLabelNoiseRate(t *testing.T) {
	users, err := Population(1, 0, SynthConfig{PerClass: 500}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	u := users[0]
	// Count samples whose label disagrees with their generating class
	// (generation interleaves +1/−1).
	flipped := 0
	for i, y := range u.Truth {
		gen := 1.0
		if i%2 == 1 {
			gen = -1
		}
		if y != gen {
			flipped++
		}
	}
	rate := float64(flipped) / float64(len(u.Truth))
	if math.Abs(rate-0.10) > 1e-9 {
		t.Errorf("flip rate = %v, want exactly 0.10 of samples", rate)
	}
	clean, err := Population(1, 0, SynthConfig{PerClass: 100, FlipFraction: -1}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range clean[0].Truth {
		gen := 1.0
		if i%2 == 1 {
			gen = -1
		}
		if y != gen {
			t.Fatal("FlipFraction<0 should disable noise")
		}
	}
}

func TestRotationMovesData(t *testing.T) {
	users, err := Population(2, math.Pi, SynthConfig{PerClass: 50, FlipFraction: -1}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	// User 1 is rotated by π: its +1 class mean should be near the
	// negation of user 0's +1 class mean.
	mean := func(u User, cls float64) mat.Vector {
		m := mat.NewVector(2)
		count := 0.0
		for i := range u.Truth {
			if u.Truth[i] == cls {
				m.Add(u.X.Row(i))
				count++
			}
		}
		m.Scale(1 / count)
		return m
	}
	m0 := mean(users[0], 1)
	m1 := mean(users[1], 1)
	neg := m0.Clone()
	neg.Scale(-1)
	if mat.Dist2(m1, neg) > 6 { // class std is 15 per axis; mean of 50 ~ 2.1σ
		t.Errorf("π-rotated mean %v not near %v", m1, neg)
	}
}

func TestSplit(t *testing.T) {
	users, err := Population(1, 0, SynthConfig{PerClass: 5}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	x, y, truth := users[0].Split(4)
	if x.Rows != 10 || len(y) != 4 || len(truth) != 10 {
		t.Fatalf("Split shapes: %d rows, %d labels, %d truth", x.Rows, len(y), len(truth))
	}
	_, yAll, _ := users[0].Split(99)
	if len(yAll) != 10 {
		t.Errorf("over-long split should clamp, got %d", len(yAll))
	}
}

// Property: prefixes are class-balanced before flipping (interleaving), so
// even-length labeled prefixes contain both classes (modulo the 10% noise,
// checked with noise disabled).
func TestPropertyPrefixBalanced(t *testing.T) {
	f := func(seed int64, labRaw uint8) bool {
		users, err := Population(1, 0, SynthConfig{PerClass: 50, FlipFraction: -1}, rng.New(seed))
		if err != nil {
			return false
		}
		labeled := (int(labRaw%20) + 1) * 2
		_, y, _ := users[0].Split(labeled)
		pos, neg := 0, 0
		for _, v := range y {
			if v > 0 {
				pos++
			} else {
				neg++
			}
		}
		return pos == neg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
