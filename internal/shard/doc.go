// Package shard holds the building blocks of the sharded serving plane:
// the consistent-hash ring that assigns devices (by session token) to
// shard coordinators, and the grouped-reduction algebra that makes the
// sharded ADMM bit-identical to a single coordinator.
//
// The paper's consensus step (Eq. 23) needs only Σ(x_t + u_t) and a count
// from the whole population, so it decomposes into shard-local partial
// sums plus one tiny cross-shard reduce per ADMM iteration. Because
// floating-point addition is not associative, "the same sum" is not
// automatic: this package fixes one summation shape — per-partition
// partials folded in partition order — and both planes use it through the
// same helpers (SumXU, ApplyZ, Fold, FoldInit). A single coordinator
// configured with the matching ReduceGroups partition (see
// protocol.ServerConfig) then reproduces the sharded result bit for bit,
// which is what the pinned equivalence tests assert.
//
// The wire half of the plane lives in internal/protocol (RunShard,
// RunAggregator, the MsgShard* kinds in internal/transport); the operator
// view is docs/SHARDING.md.
package shard
