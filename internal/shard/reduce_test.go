package shard

import (
	"math"
	"testing"

	"plos/internal/core"
	"plos/internal/mat"
	"plos/internal/rng"
)

func randVecs(seed int64, n, dim int) []mat.Vector {
	g := rng.New(seed)
	out := make([]mat.Vector, n)
	for i := range out {
		v := mat.NewVector(dim)
		for j := range v {
			v[j] = g.Norm()
		}
		out[i] = v
	}
	return out
}

// One partition holding the whole population must reproduce
// core.FederatedInit bit for bit — the K=1 leg of the bit-identity
// contract — on both the label-weighted path and the no-labels fallback.
func TestFoldInitSinglePartitionMatchesFederatedInit(t *testing.T) {
	ws := randVecs(3, 7, 5)
	for name, weights := range map[string][]float64{
		"weighted": {3, 0, 1, 0, 2, 5, 0},
		"fallback": {0, 0, 0, 0, 0, 0, 0},
	} {
		want := core.FederatedInit(ws, weights)
		got := FoldInit([]InitPartial{NewInitPartial(ws, weights, 5)}, len(ws))
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("%s: w0[%d] = %x, FederatedInit has %x", name, j, got[j], want[j])
			}
		}
	}
}

// Fold of a single partial must return exactly that partial's bits (and a
// fresh vector, not an alias).
func TestFoldSinglePartialIsIdentity(t *testing.T) {
	p := randVecs(9, 1, 4)[0]
	p[2] = math.Copysign(0, -1) // −0 would become +0 under 0 + x folding
	got := Fold([]mat.Vector{p})
	for j := range p {
		if math.Float64bits(got[j]) != math.Float64bits(p[j]) {
			t.Fatalf("Fold single: slot %d changed bits", j)
		}
	}
	got[0] = 999
	if p[0] == 999 {
		t.Fatal("Fold must clone, not alias, its single partial")
	}
}

// SumXU and ApplyZ must mirror admm.Consensus.Step's per-worker operation
// order: for one partition covering all workers, the folded z-input sum
// and primal partial match a hand-rolled Step-shaped loop bitwise.
func TestSumXUAndApplyZMirrorStepShape(t *testing.T) {
	const n, dim = 6, 4
	xs := randVecs(11, n, dim)
	us := randVecs(12, n, dim)
	// Reference: the exact loop shape of admm.Consensus.Step.
	refSum := mat.NewVector(dim)
	for i := range xs {
		refSum.Add(xs[i])
		refSum.Add(us[i])
	}
	gotSum := Fold([]mat.Vector{SumXU(xs, us, dim)})
	for j := range refSum {
		if gotSum[j] != refSum[j] {
			t.Fatalf("SumXU slot %d: %x, Step shape has %x", j, gotSum[j], refSum[j])
		}
	}

	z := randVecs(13, 1, dim)[0]
	refUs := make([]mat.Vector, n)
	var refPrimal float64
	for i := range xs {
		refUs[i] = us[i].Clone()
		du := mat.SubVec(xs[i], z)
		refPrimal += du.SquaredNorm()
		refUs[i].Add(du)
	}
	gotPrimal := FoldScalars([]float64{ApplyZ(xs, us, z)})
	if gotPrimal != refPrimal {
		t.Fatalf("ApplyZ primal partial %x, Step shape has %x", gotPrimal, refPrimal)
	}
	for i := range us {
		for j := range us[i] {
			if us[i][j] != refUs[i][j] {
				t.Fatalf("ApplyZ dual %d slot %d diverged from Step shape", i, j)
			}
		}
	}
}
