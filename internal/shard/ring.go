package shard

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// defaultReplicas is the virtual-node count per shard when NewRing is
// given a non-positive replica count. More replicas smooth the token
// distribution; the value only changes placement, never correctness.
const defaultReplicas = 64

// Ring is a consistent-hash ring mapping session tokens to shard IDs.
// Placement depends only on (shard IDs, replicas): two processes that
// build a ring from the same inputs agree on every owner, so a restarted
// operator tool re-derives the same assignment (pinned by
// TestRingDeterministicAcrossBuilds). Adding or removing one shard moves
// only the tokens whose arc changed hands; everything else keeps its
// owner (TestRingMinimalMovement).
//
// Ring is not safe for concurrent mutation; build it up front or guard it.
type Ring struct {
	replicas int
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring over the given shard IDs. replicas <= 0 selects
// the default virtual-node count. Duplicate IDs are collapsed.
func NewRing(shards []int, replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &Ring{replicas: replicas}
	seen := make(map[int]bool, len(shards))
	for _, s := range shards {
		if !seen[s] {
			seen[s] = true
			r.add(s)
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].less(r.points[j]) })
	return r
}

// less orders points by hash, breaking the (astronomically unlikely)
// collision by shard ID so the ring layout is a pure function of its
// inputs.
func (p ringPoint) less(q ringPoint) bool {
	if p.hash != q.hash {
		return p.hash < q.hash
	}
	return p.shard < q.shard
}

func (r *Ring) add(shard int) {
	for k := 0; k < r.replicas; k++ {
		r.points = append(r.points, ringPoint{hash: pointHash(shard, k), shard: shard})
	}
}

// Add inserts a shard's virtual nodes. Adding a present shard is a no-op.
func (r *Ring) Add(shard int) {
	for _, p := range r.points {
		if p.shard == shard {
			return
		}
	}
	r.add(shard)
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].less(r.points[j]) })
}

// Remove deletes a shard's virtual nodes. Removing an absent shard is a
// no-op.
func (r *Ring) Remove(shard int) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Shards returns the distinct shard IDs on the ring in ascending order.
func (r *Ring) Shards() []int {
	seen := make(map[int]bool)
	var out []int
	for _, p := range r.points {
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	sort.Ints(out)
	return out
}

// Owner returns the shard that owns token: the first virtual node at or
// clockwise of the token's hash, wrapping past zero. It panics on an
// empty ring (no shards can own anything).
func (r *Ring) Owner(token int64) int {
	if len(r.points) == 0 {
		panic("shard: Owner on empty ring")
	}
	h := tokenHash(token)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Partition groups tokens by owning shard, preserving the input order
// within each shard — callers that feed tokens in global slot order get
// slot-ordered partitions, the order the bit-identity contract fixes.
func (r *Ring) Partition(tokens []int64) map[int][]int64 {
	out := make(map[int][]int64)
	for _, tok := range tokens {
		s := r.Owner(tok)
		out[s] = append(out[s], tok)
	}
	return out
}

// pointHash positions virtual node k of a shard: FNV-1a over the 8-byte
// little-endian shard ID and replica index. FNV is stable across Go
// versions and platforms, unlike maphash, which is what makes ring
// placement reproducible between processes.
func pointHash(shard, replica int) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(int64(shard)))
	binary.LittleEndian.PutUint64(buf[8:], uint64(int64(replica)))
	_, _ = h.Write(buf[:])
	return h.Sum64()
}

// tokenHash positions a session token on the ring.
func tokenHash(token int64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(token))
	_, _ = h.Write(buf[:])
	return h.Sum64()
}
