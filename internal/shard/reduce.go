package shard

import "plos/internal/mat"

// The helpers below fix the summation shape of every cross-user reduction
// in the training protocol: a partition computes its partial with the same
// per-element operations a single coordinator would use, and partials are
// folded in partition order. Both the sharded plane and a single
// coordinator running with ReduceGroups call these, so bit-identity
// between the two is by construction rather than by luck. Keep the
// floating-point operation sequences here in lockstep with
// admm.Consensus.Step and core.FederatedInit.

// SumXU is one partition's consensus partial Σ(x_i + u_i), accumulated in
// index order exactly as admm.Consensus.Step does (x then u, per worker).
// xs and us are aligned.
func SumXU(xs, us []mat.Vector, dim int) mat.Vector {
	sum := mat.NewVector(dim)
	for i, x := range xs {
		sum.Add(x)
		sum.Add(us[i])
	}
	return sum
}

// ApplyZ folds a freshly reduced consensus z into one partition's scaled
// duals (u_i += x_i − z, in place) and returns the partition's
// primal-residual partial Σ‖x_i − z‖², mirroring the dual-update half of
// admm.Consensus.Step.
func ApplyZ(xs, us []mat.Vector, z mat.Vector) float64 {
	var primalSq float64
	for i, x := range xs {
		du := mat.SubVec(x, z)
		primalSq += du.SquaredNorm()
		us[i].Add(du)
	}
	return primalSq
}

// Fold reduces per-partition vector partials in partition order. The
// first partial is cloned rather than added to a zero vector so a single
// partition folds to exactly its own bits (0 + (−0) would flip signed
// zeros). Returns nil for no partials.
func Fold(partials []mat.Vector) mat.Vector {
	if len(partials) == 0 {
		return nil
	}
	total := partials[0].Clone()
	for _, p := range partials[1:] {
		total.Add(p)
	}
	return total
}

// FoldScalars reduces per-partition scalar partials in partition order.
func FoldScalars(partials []float64) float64 {
	if len(partials) == 0 {
		return 0
	}
	total := partials[0]
	for _, p := range partials[1:] {
		total += p
	}
	return total
}

// FoldObjective folds per-partition Eq. (23) objective partials onto the
// global ‖w0‖² term in partition order — the objective shape shared by the
// aggregator and a grouped single coordinator.
func FoldObjective(w0Sq float64, partials []float64) float64 {
	obj := w0Sq
	for _, p := range partials {
		obj += p
	}
	return obj
}

// InitPartial is one partition's contribution to the federated w0
// initialization: the label-weighted sum of its local hyperplanes, the
// plain sum (used only when no user in the whole population has labels),
// and the partition's total label weight.
type InitPartial struct {
	Weighted mat.Vector
	Plain    mat.Vector
	Weight   float64
}

// NewInitPartial accumulates one partition's init contribution in slot
// order, with the same skip-zero-weight structure as core.FederatedInit.
func NewInitPartial(ws []mat.Vector, weights []float64, dim int) InitPartial {
	p := InitPartial{Weighted: mat.NewVector(dim), Plain: mat.NewVector(dim)}
	for i, w := range ws {
		if weights[i] > 0 {
			p.Weighted.AddScaled(weights[i], w)
			p.Weight += weights[i]
		}
		p.Plain.Add(w)
	}
	return p
}

// FoldInit folds partition init contributions into the starting w0 for a
// population of total users, reproducing core.FederatedInit's decision:
// label-weighted average when any user has labels, plain average
// otherwise. The result aliases no partial.
func FoldInit(partials []InitPartial, total int) mat.Vector {
	if len(partials) == 0 || total == 0 {
		return nil
	}
	weighted := make([]mat.Vector, len(partials))
	plain := make([]mat.Vector, len(partials))
	wts := make([]float64, len(partials))
	for i, p := range partials {
		weighted[i], plain[i], wts[i] = p.Weighted, p.Plain, p.Weight
	}
	if wt := FoldScalars(wts); wt > 0 {
		sum := Fold(weighted)
		sum.Scale(1 / wt)
		return sum
	}
	sum := Fold(plain)
	sum.Scale(1 / float64(total))
	return sum
}
