package shard

import (
	"reflect"
	"testing"

	"plos/internal/rng"
)

func testTokens(n int) []int64 {
	g := rng.New(77)
	out := make([]int64, n)
	for i := range out {
		tok := g.SplitN("session", i).Int63()
		if tok == 0 {
			tok = 1
		}
		out[i] = tok
	}
	return out
}

// A single shard owns every token: the ring degenerates to today's
// single-coordinator assignment.
func TestRingSingleShardOwnsAll(t *testing.T) {
	r := NewRing([]int{0}, 0)
	tokens := testTokens(500)
	for _, tok := range tokens {
		if got := r.Owner(tok); got != 0 {
			t.Fatalf("Owner(%d) = %d, want 0", tok, got)
		}
	}
	parts := r.Partition(tokens)
	if len(parts) != 1 || len(parts[0]) != len(tokens) {
		t.Fatalf("Partition: %d shards, |shard 0| = %d; want 1 shard with all %d",
			len(parts), len(parts[0]), len(tokens))
	}
	if !reflect.DeepEqual(parts[0], tokens) {
		t.Fatal("Partition must preserve input order within a shard")
	}
}

// Placement is a pure function of (shard set, replicas): two independently
// built rings — including one built in a different insertion order — agree
// on every owner, so restarted processes re-derive the same assignment.
func TestRingDeterministicAcrossBuilds(t *testing.T) {
	a := NewRing([]int{0, 1, 2, 3}, 32)
	b := NewRing([]int{3, 1, 0, 2}, 32)
	for _, tok := range testTokens(2000) {
		if a.Owner(tok) != b.Owner(tok) {
			t.Fatalf("owner of %d differs between identically configured rings", tok)
		}
	}
}

// Adding a shard moves only the tokens the new shard takes over; removing
// it restores exactly the old assignment. No unrelated token changes owner.
func TestRingMinimalMovement(t *testing.T) {
	tokens := testTokens(3000)
	base := NewRing([]int{0, 1, 2}, 0)
	before := make(map[int64]int, len(tokens))
	for _, tok := range tokens {
		before[tok] = base.Owner(tok)
	}

	grown := NewRing([]int{0, 1, 2, 3}, 0)
	moved := 0
	for _, tok := range tokens {
		after := grown.Owner(tok)
		if after != before[tok] {
			if after != 3 {
				t.Fatalf("token %d moved %d -> %d, but only the new shard 3 may gain tokens",
					tok, before[tok], after)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no token moved to the new shard; ring is not spreading")
	}
	// Expect roughly 1/4 of tokens on the new shard; anything beyond half
	// means far more than the new shard's arcs changed hands.
	if moved > len(tokens)/2 {
		t.Fatalf("%d of %d tokens moved on shard add; want ≈ 1/4", moved, len(tokens))
	}

	// Add/Remove must be inverses of building the smaller ring directly.
	mutated := NewRing([]int{0, 1, 2}, 0)
	mutated.Add(3)
	for _, tok := range tokens {
		if mutated.Owner(tok) != grown.Owner(tok) {
			t.Fatalf("Add(3): owner of %d differs from freshly built 4-shard ring", tok)
		}
	}
	mutated.Remove(3)
	for _, tok := range tokens {
		if mutated.Owner(tok) != before[tok] {
			t.Fatalf("Remove(3): owner of %d did not return to its pre-add shard", tok)
		}
	}
}

func TestRingShardsAndDuplicates(t *testing.T) {
	r := NewRing([]int{2, 0, 2, 1}, 8)
	if got := r.Shards(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("Shards() = %v, want [0 1 2]", got)
	}
	r.Add(1) // present: no-op
	if got := len(r.points); got != 3*8 {
		t.Fatalf("duplicate Add grew the ring to %d points, want %d", got, 3*8)
	}
	r.Remove(7) // absent: no-op
	if got := r.Shards(); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("Shards() after no-op Remove = %v, want [0 1 2]", got)
	}
}

func TestRingOwnerEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Owner on an empty ring must panic")
		}
	}()
	NewRing(nil, 0).Owner(42)
}
