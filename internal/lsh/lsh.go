// Package lsh implements the random-hyperplane locality-sensitive hashing
// scheme (SimHash, Charikar STOC 2002) that the Group baseline uses to
// measure similarity between users without exchanging raw samples
// (paper §VI-A): each data point is hashed to one of n = 2^bits buckets by
// the sign pattern of `bits` random hyperplanes; a user is summarized by
// the frequency histogram of their points over the buckets; and two users'
// similarity is the generalized Jaccard coefficient
//
//	S(u, v) = Σ_i min(u_i, v_i) / Σ_i max(u_i, v_i)
//
// of their histograms. The paper sets n = 128 (7 hyperplanes).
package lsh

import (
	"fmt"

	"plos/internal/mat"
	"plos/internal/rng"
)

// Hasher maps vectors to buckets via random hyperplanes.
type Hasher struct {
	planes []mat.Vector // one random unit normal per bit
}

// NewHasher creates a hasher over dim-dimensional vectors producing
// 2^bits buckets. bits must be in [1, 30].
func NewHasher(dim, bits int, g *rng.RNG) (*Hasher, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("lsh: NewHasher: dimension must be positive, got %d", dim)
	}
	if bits < 1 || bits > 30 {
		return nil, fmt.Errorf("lsh: NewHasher: bits must be in [1,30], got %d", bits)
	}
	planes := make([]mat.Vector, bits)
	for i := range planes {
		planes[i] = g.SplitN("lsh-plane", i).UnitVector(dim)
	}
	return &Hasher{planes: planes}, nil
}

// Buckets returns the number of buckets, 2^bits.
func (h *Hasher) Buckets() int { return 1 << len(h.planes) }

// Hash returns the bucket index of x: bit i is set iff plane_i · x >= 0.
func (h *Hasher) Hash(x mat.Vector) int {
	var b int
	for i, p := range h.planes {
		if p.Dot(x) >= 0 {
			b |= 1 << i
		}
	}
	return b
}

// Histogram returns the normalized bucket-frequency histogram of the rows
// of x (entries sum to 1 for nonempty input).
func (h *Hasher) Histogram(x *mat.Matrix) mat.Vector {
	hist := make(mat.Vector, h.Buckets())
	if x.Rows == 0 {
		return hist
	}
	for i := 0; i < x.Rows; i++ {
		hist[h.Hash(x.Row(i))]++
	}
	hist.Scale(1 / float64(x.Rows))
	return hist
}

// Jaccard returns the generalized Jaccard coefficient of two nonnegative
// histograms: Σ min / Σ max, defined as 0 when both are empty.
func Jaccard(u, v mat.Vector) (float64, error) {
	if len(u) != len(v) {
		return 0, fmt.Errorf("lsh: Jaccard: histogram lengths differ: %d vs %d", len(u), len(v))
	}
	var num, den float64
	for i := range u {
		a, b := u[i], v[i]
		if a < 0 || b < 0 {
			return 0, fmt.Errorf("lsh: Jaccard: negative histogram entry at %d", i)
		}
		if a < b {
			num += a
			den += b
		} else {
			num += b
			den += a
		}
	}
	if den == 0 {
		return 0, nil
	}
	return num / den, nil
}

// SimilarityMatrix computes the pairwise Jaccard similarity of per-user
// datasets under a shared hasher. The result is symmetric with unit
// diagonal (for nonempty users).
func SimilarityMatrix(users []*mat.Matrix, h *Hasher) (*mat.Matrix, error) {
	hists := make([]mat.Vector, len(users))
	for i, u := range users {
		hists[i] = h.Histogram(u)
	}
	sim := mat.NewMatrix(len(users), len(users))
	for i := range hists {
		for j := i; j < len(hists); j++ {
			s, err := Jaccard(hists[i], hists[j])
			if err != nil {
				return nil, fmt.Errorf("lsh: SimilarityMatrix(%d,%d): %w", i, j, err)
			}
			sim.Set(i, j, s)
			sim.Set(j, i, s)
		}
	}
	return sim, nil
}
