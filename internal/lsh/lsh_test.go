package lsh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"plos/internal/mat"
	"plos/internal/rng"
)

func TestNewHasherValidation(t *testing.T) {
	g := rng.New(1)
	if _, err := NewHasher(0, 7, g); err == nil {
		t.Error("dim 0 should error")
	}
	if _, err := NewHasher(3, 0, g); err == nil {
		t.Error("bits 0 should error")
	}
	if _, err := NewHasher(3, 31, g); err == nil {
		t.Error("bits 31 should error")
	}
	h, err := NewHasher(3, 7, g)
	if err != nil {
		t.Fatal(err)
	}
	if h.Buckets() != 128 {
		t.Errorf("Buckets = %d, want 128 (paper n=128)", h.Buckets())
	}
}

func TestHashRangeAndDeterminism(t *testing.T) {
	g := rng.New(2)
	h, err := NewHasher(4, 5, g)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		x := mat.Vector{r.NormFloat64(), r.NormFloat64(), r.NormFloat64(), r.NormFloat64()}
		b := h.Hash(x)
		if b < 0 || b >= h.Buckets() {
			t.Fatalf("bucket %d out of range", b)
		}
		if h.Hash(x) != b {
			t.Fatal("Hash must be deterministic")
		}
	}
}

func TestNearbyPointsCollide(t *testing.T) {
	// LSH property: points at tiny angular distance collide far more often
	// than antipodal points.
	g := rng.New(4)
	r := rand.New(rand.NewSource(5))
	sameBucketNear, sameBucketFar := 0, 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		h, err := NewHasher(8, 4, g.SplitN("h", trial))
		if err != nil {
			t.Fatal(err)
		}
		x := make(mat.Vector, 8)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		near := x.Clone()
		near[0] += 0.01
		far := mat.ScaleVec(-1, x)
		if h.Hash(x) == h.Hash(near) {
			sameBucketNear++
		}
		if h.Hash(x) == h.Hash(far) {
			sameBucketFar++
		}
	}
	if sameBucketNear < trials*9/10 {
		t.Errorf("near collisions = %d/%d, want almost all", sameBucketNear, trials)
	}
	if sameBucketFar != 0 {
		t.Errorf("antipodal collisions = %d, want 0", sameBucketFar)
	}
}

func TestHistogramNormalized(t *testing.T) {
	g := rng.New(6)
	h, err := NewHasher(2, 3, g)
	if err != nil {
		t.Fatal(err)
	}
	x := mat.FromRows([][]float64{{1, 0}, {0, 1}, {-1, -1}, {2, 2}})
	hist := h.Histogram(x)
	if len(hist) != 8 {
		t.Fatalf("len(hist) = %d", len(hist))
	}
	if math.Abs(hist.Sum()-1) > 1e-12 {
		t.Errorf("histogram sum = %v", hist.Sum())
	}
	empty := h.Histogram(mat.NewMatrix(0, 2))
	if empty.Sum() != 0 {
		t.Error("empty histogram should be all zeros")
	}
}

func TestJaccardKnown(t *testing.T) {
	tests := []struct {
		name string
		u, v mat.Vector
		want float64
	}{
		{"identical", mat.Vector{0.5, 0.5}, mat.Vector{0.5, 0.5}, 1},
		{"disjoint", mat.Vector{1, 0}, mat.Vector{0, 1}, 0},
		{"half", mat.Vector{1, 0}, mat.Vector{0.5, 0.5}, 1.0 / 3},
		{"both empty", mat.Vector{0, 0}, mat.Vector{0, 0}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Jaccard(tc.u, tc.v)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Jaccard = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestJaccardErrors(t *testing.T) {
	if _, err := Jaccard(mat.Vector{1}, mat.Vector{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := Jaccard(mat.Vector{-1}, mat.Vector{1}); err == nil {
		t.Error("negative entries should error")
	}
}

// Properties: Jaccard is symmetric, bounded in [0,1], and 1 on identical
// nonempty histograms.
func TestPropertyJaccard(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		r := rand.New(rand.NewSource(seed))
		u := make(mat.Vector, n)
		v := make(mat.Vector, n)
		for i := range u {
			u[i] = r.Float64()
			v[i] = r.Float64()
		}
		suv, err1 := Jaccard(u, v)
		svu, err2 := Jaccard(v, u)
		if err1 != nil || err2 != nil {
			return false
		}
		if suv != svu || suv < 0 || suv > 1 {
			return false
		}
		self, err := Jaccard(u, u)
		if err != nil {
			return false
		}
		return math.Abs(self-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSimilarityMatrix(t *testing.T) {
	g := rng.New(7)
	h, err := NewHasher(2, 7, g)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(8))
	mk := func(cx, cy float64) *mat.Matrix {
		m := mat.NewMatrix(60, 2)
		for i := 0; i < 60; i++ {
			m.Set(i, 0, cx+r.NormFloat64()*0.2)
			m.Set(i, 1, cy+r.NormFloat64()*0.2)
		}
		return m
	}
	// Users 0,1 share a region; user 2 is in the opposite quadrant.
	users := []*mat.Matrix{mk(3, 3), mk(3, 3), mk(-3, -3)}
	sim, err := SimilarityMatrix(users, h)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.IsSymmetric(1e-12) {
		t.Error("similarity matrix must be symmetric")
	}
	for i := 0; i < 3; i++ {
		if math.Abs(sim.At(i, i)-1) > 1e-12 {
			t.Errorf("diagonal (%d) = %v", i, sim.At(i, i))
		}
	}
	if sim.At(0, 1) <= sim.At(0, 2) {
		t.Errorf("similar users (%v) should beat dissimilar (%v)", sim.At(0, 1), sim.At(0, 2))
	}
}
