package eval

import (
	"fmt"

	"plos/internal/core"
	"plos/internal/har"
	"plos/internal/rng"
	"plos/internal/svm"
)

// CutRoundOptions parameterize the solver hot-path workload shared by
// BenchmarkCutRound and cmd/plos-bench -bench-json.
type CutRoundOptions struct {
	// Rebuild disables the incremental restricted-QP cache (DESIGN.md §11),
	// rebuilding the dual Gram from scratch each cut round — the "before"
	// arm of the benchmark. Both arms produce bit-identical models.
	Rebuild bool
	// Workers is the solver fan-out (0 = GOMAXPROCS).
	Workers int
	// Seed drives the cohort generation and label assignment.
	Seed int64
}

// MinCutRounds is the depth the workload must reach for the comparison to
// be meaningful — below this the Gram never grows far enough for setup cost
// to matter. CutRound returns an error when the solver converges earlier.
const MinCutRounds = 20

// CutRound trains centralized PLOS once on a Fig. 5-sized HAR cohort
// (10 users, 561 features + bias as in the real corpus, 40 samples each,
// 5 label providers at 10%)
// with a tight cutting-plane tolerance that forces a deep constraint-
// generation loop. It returns the solver diagnostics; callers time it.
func CutRound(o CutRoundOptions) (core.TrainInfo, error) {
	g := rng.New(o.Seed)
	ds, err := har.Generate(har.Config{Users: 10, PerClass: 20, Dim: 561}, g.Split("har"))
	if err != nil {
		return core.TrainInfo{}, err
	}
	bases := make([]Base, len(ds.Users))
	for i, u := range ds.Users {
		bases[i] = Base{X: svm.AugmentBias(u.X), Truth: u.Truth}
	}
	providers := randomProviders(5, len(bases), g.Split("providers"))
	users, _, err := Assemble(bases, providers, 0.1, g.Split("assemble"))
	if err != nil {
		return core.TrainInfo{}, err
	}
	cfg := core.Config{
		Lambda: 100, Cl: 1, Cu: 0.2,
		Epsilon:    1e-5, // tight tolerance → many cut rounds per CCCP round
		MaxCutIter: 400,
		// Inexact inner solves: the warm-started duals carry convergence
		// across rounds, so a modest per-solve iteration cap keeps the
		// cutting-plane trajectory intact while the benchmark measures the
		// restricted-QP *setup* (the part the incremental cache removes)
		// rather than re-timing the unchanged FISTA arithmetic.
		QPMaxIter:   60,
		MaxCCCPIter: 3,
		Workers:     o.Workers,
		RebuildGram: o.Rebuild,
		Seed:        o.Seed,
	}
	_, info, err := core.TrainCentralized(users, cfg)
	if err != nil {
		return info, err
	}
	if info.CutRounds < MinCutRounds {
		return info, fmt.Errorf("eval: CutRound: workload too shallow: %d cut rounds < %d",
			info.CutRounds, MinCutRounds)
	}
	return info, nil
}
