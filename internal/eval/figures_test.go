package eval

import (
	"math"
	"testing"

	"plos/internal/cost"
)

// The figure tests run miniature versions of each experiment and assert
// the qualitative shapes the paper reports, not absolute values — full-size
// runs live in bench_test.go and cmd/plos-bench.

func tinyCohort(trials int, seed int64) CohortOptions {
	return CohortOptions{Trials: trials, Seed: seed, Lambda: 50, Cl: 1, Cu: 0.2}
}

func curveByName(f Figure, name string) []float64 {
	for _, c := range f.Curves {
		if c.Name == name {
			return c.Y
		}
	}
	return nil
}

func meanOf(y []float64) float64 {
	var s float64
	for _, v := range y {
		s += v
	}
	return s / float64(len(y))
}

func TestFig3Small(t *testing.T) {
	a, b, err := Fig3(BodyOptions{
		CohortOptions:  tinyCohort(2, 1),
		Subjects:       6,
		Segments:       25,
		ProviderCounts: []int{2, 4},
		LabelRate:      0.2,
	})
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	if len(a.X) != 2 || len(b.X) != 2 {
		t.Fatalf("x axes: %v / %v", a.X, b.X)
	}
	for _, f := range []Figure{a, b} {
		if len(f.Curves) != 4 {
			t.Fatalf("%s: %d curves", f.ID, len(f.Curves))
		}
		for _, c := range f.Curves {
			for i, y := range c.Y {
				if y < 0.3 || y > 1 {
					t.Errorf("%s %s[%d] = %v out of range", f.ID, c.Name, i, y)
				}
			}
		}
	}
	// PLOS must not lose badly to Single on unlabeled users. Toy-scale
	// k-means variance is large, so the slack is generous — the full-size
	// ordering is asserted in EXPERIMENTS.md from the bench runs.
	plos := curveByName(b, MethodPLOS)
	single := curveByName(b, MethodSingle)
	if meanOf(plos) < meanOf(single)-0.1 {
		t.Errorf("PLOS (%v) below Single (%v) on unlabeled users", plos, single)
	}
}

func TestFig4Small(t *testing.T) {
	a, _, err := Fig4(BodyOptions{
		CohortOptions:  tinyCohort(1, 2),
		Subjects:       5,
		Segments:       12,
		TrainingRates:  []float64{0.1, 0.4},
		FixedProviders: 3,
	})
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	// More labels should not hurt PLOS on labeled users (loose check).
	plos := curveByName(a, MethodPLOS)
	if plos[len(plos)-1]+0.1 < plos[0] {
		t.Errorf("PLOS labeled accuracy dropped with more labels: %v", plos)
	}
}

func TestFig5And6Small(t *testing.T) {
	opt := HAROptions{
		CohortOptions:  tinyCohort(1, 3),
		Users:          8,
		PerClass:       15,
		Dim:            60,
		ProviderCounts: []int{3, 6},
		LabelRate:      0.25,
		TrainingRates:  []float64{0.2, 0.4},
		FixedProviders: 4,
	}
	a5, b5, err := Fig5(opt)
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	if len(a5.Curves) != 4 || len(b5.Curves) != 4 {
		t.Fatal("Fig5 should carry all four methods")
	}
	a6, _, err := Fig6(opt)
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	if len(a6.X) != 2 {
		t.Fatalf("Fig6 x = %v", a6.X)
	}
}

func TestFig7Small(t *testing.T) {
	a, b, err := Fig7(HAROptions{
		CohortOptions:  tinyCohort(1, 4),
		Users:          6,
		PerClass:       15,
		Dim:            50,
		LogLambdas:     []float64{0, 2, 4},
		FixedProviders: 3,
		LabelRate:      0.25,
	})
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	// λ sweep carries only the PLOS curve.
	if len(a.Curves) != 1 || a.Curves[0].Name != MethodPLOS {
		t.Fatalf("Fig7 curves = %+v", a.Curves)
	}
	if len(curveByName(b, MethodPLOS)) != 3 {
		t.Fatal("Fig7b missing points")
	}
}

func TestFig8Small(t *testing.T) {
	a, _, err := Fig8(SynthOptions{
		CohortOptions:  tinyCohort(2, 5),
		UsersCount:     6,
		PerClass:       25,
		RotationAngles: []float64{0, math.Pi},
		Fig8Providers:  3,
		Fig8Rate:       0.16,
	})
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	// The defining shape: All degrades sharply as users rotate apart,
	// Single does not degrade (it is per-user).
	all := curveByName(a, MethodAll)
	if all[1] >= all[0]-0.05 {
		t.Errorf("All should degrade with rotation: %v", all)
	}
	single := curveByName(a, MethodSingle)
	if single[1] < single[0]-0.15 {
		t.Errorf("Single should be rotation-insensitive: %v", single)
	}
}

func TestFig9And10Small(t *testing.T) {
	opt := SynthOptions{
		CohortOptions:  tinyCohort(1, 6),
		UsersCount:     6,
		PerClass:       25,
		ProviderCounts: []int{2, 4},
		Fig9Rate:       0.16,
		TrainingRates:  []float64{0.1, 0.2},
		FixedProviders: 3,
	}
	a9, _, err := Fig9(opt)
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	if len(a9.X) != 2 {
		t.Fatal("Fig9 x axis")
	}
	_, b10, err := Fig10(opt)
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	if len(b10.Curves) != 4 {
		t.Fatal("Fig10 curves")
	}
}

func TestFig11Small(t *testing.T) {
	a, b, err := Fig11(ScaleOptions{
		CohortOptions: tinyCohort(1, 7),
		UserCounts:    []int{4},
		PerClass:      15,
		LabelRate:     0.2,
	})
	if err != nil {
		t.Fatalf("Fig11: %v", err)
	}
	// Paper: the distributed−centralized difference is close to zero.
	for _, f := range []Figure{a, b} {
		d := f.Curves[0].Y[0]
		if math.Abs(d) > 0.12 {
			t.Errorf("%s: |distributed − centralized| = %v too large", f.ID, d)
		}
	}
}

func TestFig12Small(t *testing.T) {
	f, err := Fig12(ScaleOptions{
		CohortOptions: tinyCohort(1, 8),
		UserCounts:    []int{3, 6},
		PerClass:      10,
		LabelRate:     0.2,
		Phone:         cost.DeviceProfile{CPUSlowdown: 1}, // keep the test fast
	})
	if err != nil {
		t.Fatalf("Fig12: %v", err)
	}
	cent := curveByName(f, "Centralized")
	dist := curveByName(f, "Distributed")
	if len(cent) != 2 || len(dist) != 2 {
		t.Fatalf("curves: %v / %v", cent, dist)
	}
	for i := range cent {
		if cent[i] <= 0 || dist[i] <= 0 {
			t.Errorf("non-positive timing at %d: %v / %v", i, cent[i], dist[i])
		}
	}
}

func TestFig13Small(t *testing.T) {
	f, err := Fig13(ScaleOptions{
		CohortOptions: tinyCohort(1, 9),
		UserCounts:    []int{3, 6},
		PerClass:      10,
		LabelRate:     0.2,
	})
	if err != nil {
		t.Fatalf("Fig13: %v", err)
	}
	kb := f.Curves[0].Y
	for i, v := range kb {
		if v <= 0 {
			t.Errorf("KB[%d] = %v", i, v)
		}
	}
	// Per-user overhead must stay roughly flat as the population grows
	// (paper Fig 13: "remains stable regardless of the number of users");
	// allow generous slack at toy scale.
	if kb[1] > kb[0]*3 {
		t.Errorf("per-user traffic scales with population: %v", kb)
	}
}

func TestAblations(t *testing.T) {
	opt := SynthOptions{
		CohortOptions:  tinyCohort(1, 10),
		UsersCount:     5,
		PerClass:       20,
		FixedProviders: 2,
		Fig9Rate:       0.2,
	}
	cu, err := AblationCu(opt)
	if err != nil {
		t.Fatalf("AblationCu: %v", err)
	}
	if len(cu.Curves[0].Y) != 2 {
		t.Fatal("AblationCu shape")
	}
	warm, err := AblationWarmSets(opt)
	if err != nil {
		t.Fatalf("AblationWarmSets: %v", err)
	}
	accs := curveByName(warm, "accuracy")
	if math.Abs(accs[0]-accs[1]) > 0.1 {
		t.Errorf("warm working sets changed accuracy too much: %v", accs)
	}
}

func TestAblationBalanceGuard(t *testing.T) {
	f, err := AblationBalanceGuard(SynthOptions{
		CohortOptions: tinyCohort(1, 11),
		UsersCount:    4,
		PerClass:      20,
	})
	if err != nil {
		t.Fatalf("AblationBalanceGuard: %v", err)
	}
	y := f.Curves[0].Y
	if len(y) != 2 {
		t.Fatalf("shape: %v", y)
	}
	// Matched accuracy is always >= 0.5; the guard must not be worse than
	// chance and should not collapse.
	if y[1] < 0.5 {
		t.Errorf("guarded accuracy = %v", y[1])
	}
}

func TestAblationAsync(t *testing.T) {
	f, err := AblationAsync(SynthOptions{
		CohortOptions:  tinyCohort(1, 12),
		UsersCount:     4,
		PerClass:       20,
		FixedProviders: 2,
		Fig9Rate:       0.2,
	})
	if err != nil {
		t.Fatalf("AblationAsync: %v", err)
	}
	accs := curveByName(f, "accuracy")
	if math.Abs(accs[0]-accs[1]) > 0.15 {
		t.Errorf("sync vs async accuracy gap: %v", accs)
	}
	solves := curveByName(f, "solves")
	if solves[0] <= 0 || solves[1] <= 0 {
		t.Errorf("solve counts: %v", solves)
	}
}

func TestEnergyComparison(t *testing.T) {
	f, err := EnergyComparison(ScaleOptions{
		CohortOptions: tinyCohort(1, 13),
		UserCounts:    []int{3},
		PerClass:      10,
		LabelRate:     0.2,
	})
	if err != nil {
		t.Fatalf("EnergyComparison: %v", err)
	}
	dist := curveByName(f, "Distributed J")
	raw := curveByName(f, "RawUpload J")
	if len(dist) != 1 || len(raw) != 1 {
		t.Fatalf("curves: %v / %v", dist, raw)
	}
	if dist[0] <= 0 || raw[0] <= 0 {
		t.Errorf("energies must be positive: %v / %v", dist[0], raw[0])
	}
}

func TestDistributedSimCosts(t *testing.T) {
	opts := ScaleOptions{
		CohortOptions: tinyCohort(1, 14),
		UserCounts:    []int{3},
		PerClass:      10,
		LabelRate:     0.2,
	}.withDefaults()
	users, _, _, err := opts.buildUsers(3, rngNew(14))
	if err != nil {
		t.Fatal(err)
	}
	costs, err := DistributedSimCosts(users, opts.coreConfig(), opts.Dist,
		cost.DeviceProfile{CPUSlowdown: 2})
	if err != nil {
		t.Fatalf("DistributedSimCosts: %v", err)
	}
	if costs.WallClock <= 0 || costs.MeanDeviceCompute <= 0 {
		t.Errorf("costs = %+v", costs)
	}
	// Parallel wall clock uses the per-round max, so it must be at least
	// the mean per-device compute.
	if costs.WallClock < costs.MeanDeviceCompute {
		t.Errorf("wall clock %v below mean device compute %v",
			costs.WallClock, costs.MeanDeviceCompute)
	}
}
