package eval

import (
	"fmt"
	"math"

	"plos/internal/compress"
	"plos/internal/core"
	"plos/internal/rng"
)

// CompressionOptions parameterize the accuracy-vs-bytes sweep: the Fig. 5
// HAR workload trained distributed once per codec-v4 scheme, with the
// in-process compression simulation (DistConfig.Compress) standing in for
// the wire.
type CompressionOptions struct {
	CohortOptions
	// Users / PerClass / Dim shape the HAR cohort (defaults 10 / 12 / 120 —
	// the reduced Fig. 5 cohort).
	Users, PerClass, Dim int
	// Providers is the number of label-providing users (default 5); Rate
	// their label fraction (default 0.25).
	Providers int
	Rate      float64
	// Schemes are the compression specs to sweep; "dense" (the empty
	// spec) is always run first as the baseline.
	Schemes []string
}

func (o CompressionOptions) withDefaults() CompressionOptions {
	o.CohortOptions = o.CohortOptions.withDefaults()
	if o.Users <= 0 {
		o.Users = 10
	}
	if o.PerClass <= 0 {
		o.PerClass = 12
	}
	if o.Dim <= 0 {
		o.Dim = 120
	}
	if o.Providers <= 0 {
		o.Providers = 5
	}
	if o.Rate <= 0 {
		o.Rate = 0.25
	}
	if len(o.Schemes) == 0 {
		o.Schemes = []string{"q16", "q8", "q8,delta", "q16,topk:0.5", "q8,topk:0.75"}
	}
	return o
}

// CompressionPoint is one scheme's outcome on the shared workload.
type CompressionPoint struct {
	Scheme string `json:"scheme"`
	// RawBytes / CompBytes are the dense-equivalent and encoded parameter
	// payload totals across the whole run; Ratio = raw/comp (1 for dense).
	RawBytes  int64   `json:"raw_bytes"`
	CompBytes int64   `json:"comp_bytes"`
	Ratio     float64 `json:"ratio"`
	// Objective is the final training objective; ObjGapRel its relative
	// gap to the dense baseline (0 for dense itself).
	Objective float64 `json:"objective"`
	ObjGapRel float64 `json:"obj_gap_rel"`
	// Accuracy is the personalized-model accuracy over every user's full
	// ground truth.
	Accuracy float64 `json:"accuracy"`
	// EFNorm is the final error-feedback residual norm (0 for dense).
	EFNorm float64 `json:"ef_norm"`
}

// HARCohort assembles the reduced Fig. 5 HAR workload shared by the
// codec-v4 sweep and the async wire bench: Users HAR users, Providers of
// them labeling a Rate fraction. The returned truths carry every user's
// full ground truth for accuracy scoring.
func HARCohort(o CompressionOptions) ([]core.UserData, [][]float64, error) {
	o = o.withDefaults()
	g := rng.New(o.Seed)
	bases, err := HAROptions{CohortOptions: o.CohortOptions,
		Users: o.Users, PerClass: o.PerClass, Dim: o.Dim}.genBases(g.Split("cohort"))
	if err != nil {
		return nil, nil, fmt.Errorf("eval: HARCohort: %w", err)
	}
	providers := randomProviders(o.Providers, len(bases), g.Split("providers"))
	users, truths, err := Assemble(bases, providers, o.Rate, g.Split("assemble"))
	if err != nil {
		return nil, nil, fmt.Errorf("eval: HARCohort: %w", err)
	}
	return users, truths, nil
}

// CompressionSweep trains the same Fig. 5 HAR workload once dense and once
// per compression scheme, reporting bytes, objective drift, and accuracy
// for each — the data behind the accuracy-vs-bytes trade-off. The solver
// caps keep a full sweep in CI budget; dense and compressed runs share
// them, so the comparison stays apples to apples.
func CompressionSweep(o CompressionOptions) ([]CompressionPoint, error) {
	o = o.withDefaults()
	users, truths, err := HARCohort(o)
	if err != nil {
		return nil, fmt.Errorf("eval: CompressionSweep: %w", err)
	}

	cfg := o.coreConfig()
	cfg.MaxCCCPIter = 4
	cfg.MaxCutIter = 20
	cfg.QPMaxIter = 800

	runOne := func(spec string) (CompressionPoint, error) {
		var ccfg compress.Config
		if spec != "dense" {
			var err error
			if ccfg, err = compress.Parse(spec); err != nil {
				return CompressionPoint{}, fmt.Errorf("eval: CompressionSweep: %w", err)
			}
		}
		dcfg := core.DistConfig{MaxADMMIter: 30, EpsAbs: 1e-2, Workers: o.Workers, Compress: ccfg}
		model, info, err := core.TrainDistributed(users, cfg, dcfg)
		if err != nil {
			return CompressionPoint{}, fmt.Errorf("eval: CompressionSweep: %s: %w", spec, err)
		}
		pt := CompressionPoint{Scheme: spec,
			RawBytes:  info.CommRawBytes,
			CompBytes: info.CommCompBytes,
			Ratio:     1,
			Objective: info.Objective,
			EFNorm:    info.CompressEFNorm,
		}
		if info.CommCompBytes > 0 {
			pt.Ratio = float64(info.CommRawBytes) / float64(info.CommCompBytes)
		}
		correct, total := 0, 0
		for t := range users {
			for i, y := range truths[t] {
				pred := 1.0
				if model.ScoreUser(t, users[t].X.Row(i)) < 0 {
					pred = -1
				}
				if pred == y {
					correct++
				}
				total++
			}
		}
		pt.Accuracy = float64(correct) / float64(total)
		return pt, nil
	}

	dense, err := runOne("dense")
	if err != nil {
		return nil, err
	}
	out := []CompressionPoint{dense}
	for _, spec := range o.Schemes {
		pt, err := runOne(spec)
		if err != nil {
			return nil, err
		}
		pt.ObjGapRel = math.Abs(pt.Objective-dense.Objective) /
			math.Max(1e-9, math.Abs(dense.Objective))
		out = append(out, pt)
	}
	return out, nil
}
