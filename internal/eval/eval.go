// Package eval is the experiment harness that regenerates every figure of
// the paper's evaluation (§VI, Figures 3–13). It assembles per-user
// datasets with randomly chosen label providers, runs PLOS and the three
// baselines, evaluates accuracy separately on users with and without
// labels (as every paper figure does), and produces Figure series that
// cmd/plos-bench and bench_test.go print.
package eval

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"plos/internal/baselines"
	"plos/internal/core"
	"plos/internal/mat"
	"plos/internal/rng"
)

// Base is one user's generated data with full ground truth, before any
// labeling decision.
type Base struct {
	X     *mat.Matrix
	Truth []float64
}

// Method names, in the paper's legend order.
const (
	MethodPLOS   = "PLOS"
	MethodAll    = "All"
	MethodGroup  = "Group"
	MethodSingle = "Single"
)

// Methods lists the default method set in presentation order.
var Methods = []string{MethodPLOS, MethodAll, MethodGroup, MethodSingle}

// Assemble turns bases into training data: users listed in providers get
// round(rate·m) labels (at least one per class, stratified so tiny rates
// still produce a two-class labeled set, mirroring the paper's "randomly
// labeled 6% ≈ 4 samples per activity"); everyone else provides none.
// Labeled samples are moved to the front of each user's matrix (the l_t
// prefix convention); the returned truths are reordered identically.
func Assemble(bases []Base, providers []int, rate float64, g *rng.RNG) ([]core.UserData, [][]float64, error) {
	isProvider := make(map[int]bool, len(providers))
	for _, p := range providers {
		if p < 0 || p >= len(bases) {
			return nil, nil, fmt.Errorf("eval: Assemble: provider %d out of range [0,%d)", p, len(bases))
		}
		isProvider[p] = true
	}
	users := make([]core.UserData, len(bases))
	truths := make([][]float64, len(bases))
	for t, b := range bases {
		if b.X == nil || b.X.Rows != len(b.Truth) {
			return nil, nil, fmt.Errorf("eval: Assemble: user %d has inconsistent base", t)
		}
		n := b.X.Rows
		var order []int
		labeled := 0
		if isProvider[t] {
			order, labeled = stratifiedOrder(b.Truth, rate, g.SplitN("assemble", t))
		} else {
			order = identity(n)
		}
		x := mat.NewMatrix(n, b.X.Cols)
		truth := make([]float64, n)
		for row, src := range order {
			copy(x.Row(row), b.X.Row(src))
			truth[row] = b.Truth[src]
		}
		users[t] = core.UserData{X: x, Y: truth[:labeled]}
		truths[t] = truth
	}
	return users, truths, nil
}

// stratifiedOrder picks round(rate·n) labeled samples (≥1 per present
// class) and returns a row order placing them first, plus the label count.
func stratifiedOrder(truth []float64, rate float64, g *rng.RNG) ([]int, int) {
	n := len(truth)
	want := int(math.Round(rate * float64(n)))
	if want < 2 {
		want = 2
	}
	if want > n {
		want = n
	}
	var pos, neg []int
	for i, y := range truth {
		if y > 0 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	g.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	g.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })

	takePos := want / 2
	takeNeg := want - takePos
	if takePos > len(pos) {
		takeNeg += takePos - len(pos)
		takePos = len(pos)
	}
	if takeNeg > len(neg) {
		takePos += takeNeg - len(neg)
		takeNeg = len(neg)
		if takePos > len(pos) {
			takePos = len(pos)
		}
	}
	selected := append(append([]int{}, pos[:takePos]...), neg[:takeNeg]...)
	g.Shuffle(len(selected), func(i, j int) { selected[i], selected[j] = selected[j], selected[i] })
	inSel := make([]bool, n)
	for _, i := range selected {
		inSel[i] = true
	}
	order := make([]int, 0, n)
	order = append(order, selected...)
	for i := 0; i < n; i++ {
		if !inSel[i] {
			order = append(order, i)
		}
	}
	return order, len(selected)
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Accuracy compares predictions to truth; when needsMatching is set (an
// unsupervised method with arbitrary polarity) the better of the two label
// assignments is used, following the paper's best-matching evaluation.
func Accuracy(pred, truth []float64, needsMatching bool) float64 {
	if len(pred) == 0 || len(pred) != len(truth) {
		return 0
	}
	correct := 0
	for i := range pred {
		if pred[i] == truth[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(pred))
	if needsMatching && 1-acc > acc {
		return 1 - acc
	}
	return acc
}

// MethodsConfig selects and parameterizes the methods to run.
type MethodsConfig struct {
	Core     core.Config
	Baseline baselines.Params
	// Distributed switches PLOS to TrainDistributed (used by Fig. 11).
	Distributed bool
	Dist        core.DistConfig
	// Skip lists method names to leave out.
	Skip []string
}

func (c MethodsConfig) skipped(name string) bool {
	for _, s := range c.Skip {
		if s == name {
			return true
		}
	}
	return false
}

// GroupAccuracies holds one method's mean accuracy over the two user
// populations of every paper figure.
type GroupAccuracies struct {
	Labeled   float64 // users who provide labels
	Unlabeled float64 // users who provide none
}

// RunMethods trains each selected method on users and returns per-method
// accuracies averaged within the provider and non-provider populations.
func RunMethods(users []core.UserData, truths [][]float64, providers []int,
	cfg MethodsConfig, g *rng.RNG) (map[string]GroupAccuracies, error) {
	if len(users) != len(truths) {
		return nil, errors.New("eval: RunMethods: users/truths length mismatch")
	}
	isProvider := make([]bool, len(users))
	for _, p := range providers {
		isProvider[p] = true
	}
	perUser := make(map[string][]float64, len(Methods))

	if !cfg.skipped(MethodPLOS) {
		var model *core.Model
		var err error
		if cfg.Distributed {
			model, _, err = core.TrainDistributed(users, cfg.Core, cfg.Dist)
		} else {
			model, _, err = core.TrainCentralized(users, cfg.Core)
		}
		if err != nil {
			return nil, fmt.Errorf("eval: PLOS: %w", err)
		}
		accs := make([]float64, len(users))
		for t, u := range users {
			pred := make([]float64, u.X.Rows)
			for i := 0; i < u.X.Rows; i++ {
				pred[i] = model.PredictUser(t, u.X.Row(i))
			}
			accs[t] = Accuracy(pred, truths[t], false)
		}
		perUser[MethodPLOS] = accs
	}

	type baselineFn func([]core.UserData, baselines.Params, *rng.RNG) ([]baselines.Prediction, error)
	for _, b := range []struct {
		name string
		fn   baselineFn
	}{
		{MethodAll, baselines.All},
		{MethodGroup, baselines.Group},
		{MethodSingle, baselines.Single},
	} {
		if cfg.skipped(b.name) {
			continue
		}
		preds, err := b.fn(users, cfg.Baseline, g.Split(b.name))
		if err != nil {
			return nil, fmt.Errorf("eval: %s: %w", b.name, err)
		}
		accs := make([]float64, len(users))
		for t, p := range preds {
			accs[t] = Accuracy(p.Labels, truths[t], p.NeedsMatching)
		}
		perUser[b.name] = accs
	}

	out := make(map[string]GroupAccuracies, len(perUser))
	for name, accs := range perUser {
		var labSum, unlSum float64
		var labN, unlN int
		for t, a := range accs {
			if isProvider[t] {
				labSum += a
				labN++
			} else {
				unlSum += a
				unlN++
			}
		}
		// An empty population renders as NaN (Format prints "-"), not as
		// a fake 0% accuracy.
		ga := GroupAccuracies{Labeled: math.NaN(), Unlabeled: math.NaN()}
		if labN > 0 {
			ga.Labeled = labSum / float64(labN)
		}
		if unlN > 0 {
			ga.Unlabeled = unlSum / float64(unlN)
		}
		out[name] = ga
	}
	return out, nil
}

// Curve is one method's series across a figure's x axis. YStd, when
// non-nil, carries the across-trial standard deviation per point (the paper
// quotes these for its Fig. 9, e.g. "the standard deviation of PLOS
// decreases from 7.37% to 0.75%").
type Curve struct {
	Name string
	Y    []float64
	YStd []float64
}

// Figure is a reproducible paper panel: X positions plus one curve per
// method.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	X      []float64
	Curves []Curve
}

// CSV renders the figure as comma-separated values with a header row
// (x, then one column per curve); NaN cells are left empty.
func (f Figure) CSV() string {
	var sb strings.Builder
	sb.WriteString("x")
	for _, c := range f.Curves {
		sb.WriteByte(',')
		sb.WriteString(c.Name)
	}
	sb.WriteByte('\n')
	for i, x := range f.X {
		fmt.Fprintf(&sb, "%g", x)
		for _, c := range f.Curves {
			sb.WriteByte(',')
			if i < len(c.Y) && !math.IsNaN(c.Y[i]) {
				fmt.Fprintf(&sb, "%g", c.Y[i])
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Format renders the figure as an aligned text table for logs and
// EXPERIMENTS.md.
func (f Figure) Format() string {
	s := fmt.Sprintf("%s: %s\n%12s", f.ID, f.Title, f.XLabel)
	for _, c := range f.Curves {
		s += fmt.Sprintf("%12s", c.Name)
	}
	s += "\n"
	for i, x := range f.X {
		s += fmt.Sprintf("%12.3f", x)
		for _, c := range f.Curves {
			var cell string
			switch {
			case i >= len(c.Y) || math.IsNaN(c.Y[i]):
				cell = "-"
			case i < len(c.YStd) && !math.IsNaN(c.YStd[i]):
				cell = fmt.Sprintf("%.3f±%.2f", c.Y[i], c.YStd[i])
			default:
				cell = fmt.Sprintf("%.4f", c.Y[i])
			}
			// Pad by rune count: "±" is multibyte, so %Ns alone misaligns.
			for pad := 12 - len([]rune(cell)); pad > 0; pad-- {
				s += " "
			}
			s += cell
		}
		s += "\n"
	}
	return s
}
