package eval

import (
	"fmt"
	"math"
	"sync"
	"time"

	"plos/internal/admm"
	"plos/internal/core"
	"plos/internal/cost"
	"plos/internal/dataset"
	"plos/internal/har"
	"plos/internal/mat"
	"plos/internal/obs"
	"plos/internal/parallel"
	"plos/internal/protocol"
	"plos/internal/rng"
	"plos/internal/sensors"
	"plos/internal/svm"
	"plos/internal/transport"
)

// CohortOptions are shared across all accuracy figures.
type CohortOptions struct {
	// Trials is the number of repetitions averaged per point (default 3).
	Trials int
	// Seed makes the whole figure reproducible.
	Seed int64
	// Lambda, Cl, Cu parameterize PLOS (defaults 100 / 1 / 0.2; the paper
	// selects them by cross-validation — see CrossValidateLambda).
	Lambda, Cl, Cu float64
	// Workers bounds the goroutine fan-out — both across a figure's trials
	// and inside each trial's solvers: 0 means runtime.GOMAXPROCS(0), 1 is
	// strictly sequential. Figure values are identical for any setting
	// (per-trial results are gathered and folded in trial order). The
	// timing figures (Fig12, EnergyComparison) keep their trials sequential
	// regardless so wall-clock measurements stay undisturbed.
	Workers int
	// Obs, when non-nil, receives the solver metrics of every training run
	// in the figure (internal/obs); figure outputs are unchanged by it.
	Obs *obs.Registry
}

func (o CohortOptions) withDefaults() CohortOptions {
	if o.Trials <= 0 {
		o.Trials = 3
	}
	if o.Lambda <= 0 {
		o.Lambda = 100
	}
	if o.Cl <= 0 {
		o.Cl = 1
	}
	if o.Cu == 0 {
		o.Cu = 0.2
	}
	return o
}

func (o CohortOptions) coreConfig() core.Config {
	return core.Config{Lambda: o.Lambda, Cl: o.Cl, Cu: o.Cu, Seed: o.Seed, Workers: o.Workers, Obs: o.Obs}
}

// sweep is the shared engine behind the accuracy figures: at every x it
// generates a cohort, assembles the labeled/unlabeled split, runs all
// methods, and averages over trials.
type sweep struct {
	id, title, xlabel string
	xs                []float64
	trials            int
	workers           int
	seed              int64
	genBases          func(x float64, g *rng.RNG) ([]Base, error)
	providersFor      func(x float64, nUsers int, g *rng.RNG) []int
	rateFor           func(x float64) float64
	cfgFor            func(x float64) MethodsConfig
	skip              []string
}

func (s sweep) run() (Figure, Figure, error) {
	root := rng.New(s.seed)
	methodNames := make([]string, 0, len(Methods))
	for _, m := range Methods {
		skipped := false
		for _, sk := range s.skip {
			if sk == m {
				skipped = true
			}
		}
		if !skipped {
			methodNames = append(methodNames, m)
		}
	}
	labeledY := make(map[string][]float64)
	unlabeledY := make(map[string][]float64)
	labeledStd := make(map[string][]float64)
	unlabeledStd := make(map[string][]float64)
	for xi, x := range s.xs {
		// Trials are independent given the figure seed (each draws from its
		// own SplitN stream), so they fan out across the worker pool; the
		// gathered per-trial results are folded below in trial order, which
		// keeps every mean/std bit-identical for any worker count.
		trialAccs, err := parallel.Map(s.workers, s.trials, func(trial int) (map[string]GroupAccuracies, error) {
			g := root.SplitN(fmt.Sprintf("%s-x%d", s.id, xi), trial)
			bases, err := s.genBases(x, g.Split("data"))
			if err != nil {
				return nil, fmt.Errorf("eval: %s x=%v: %w", s.id, x, err)
			}
			providers := s.providersFor(x, len(bases), g.Split("providers"))
			users, truths, err := Assemble(bases, providers, s.rateFor(x), g.Split("assemble"))
			if err != nil {
				return nil, fmt.Errorf("eval: %s x=%v: %w", s.id, x, err)
			}
			cfg := s.cfgFor(x)
			cfg.Skip = append(cfg.Skip, s.skip...)
			accs, err := RunMethods(users, truths, providers, cfg, g.Split("methods"))
			if err != nil {
				return nil, fmt.Errorf("eval: %s x=%v: %w", s.id, x, err)
			}
			return accs, nil
		})
		if err != nil {
			return Figure{}, Figure{}, err
		}
		perTrial := make(map[string][]GroupAccuracies)
		for _, accs := range trialAccs {
			for name, a := range accs {
				perTrial[name] = append(perTrial[name], a)
			}
		}
		for _, name := range methodNames {
			var lab, unl []float64
			for _, a := range perTrial[name] {
				lab = append(lab, a.Labeled)
				unl = append(unl, a.Unlabeled)
			}
			lm, ls := meanStd(lab)
			um, us := meanStd(unl)
			labeledY[name] = append(labeledY[name], lm)
			labeledStd[name] = append(labeledStd[name], ls)
			unlabeledY[name] = append(unlabeledY[name], um)
			unlabeledStd[name] = append(unlabeledStd[name], us)
		}
	}
	build := func(suffix, pop string, ys, stds map[string][]float64) Figure {
		f := Figure{
			ID:     s.id + suffix,
			Title:  s.title + " — " + pop,
			XLabel: s.xlabel,
			X:      append([]float64(nil), s.xs...),
		}
		for _, name := range methodNames {
			f.Curves = append(f.Curves, Curve{Name: name, Y: ys[name], YStd: stds[name]})
		}
		return f
	}
	return build("a", "users with labels", labeledY, labeledStd),
		build("b", "users w/o labels", unlabeledY, unlabeledStd), nil
}

// meanStd returns the mean and population standard deviation of xs
// (NaN-propagating: any NaN input yields NaN outputs).
func meanStd(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	var sum float64
	for _, v := range xs {
		sum += v
	}
	mean := sum / float64(len(xs))
	var varSum float64
	for _, v := range xs {
		d := v - mean
		varSum += d * d
	}
	return mean, math.Sqrt(varSum / float64(len(xs)))
}

// randomProviders picks `count` distinct users.
func randomProviders(count, nUsers int, g *rng.RNG) []int {
	if count > nUsers {
		count = nUsers
	}
	return g.SampleWithoutReplacement(nUsers, count)
}

// ---------------------------------------------------------------------
// Body sensor figures (paper §VI-B, Figs 3–4).

// BodyOptions parameterize the body-sensor experiments.
type BodyOptions struct {
	CohortOptions
	// Subjects and Segments size the simulated cohort (defaults 20 / 70,
	// the paper's numbers).
	Subjects, Segments int
	// ProviderCounts is Fig 3's x axis (default 2..18 step 2).
	ProviderCounts []int
	// LabelRate is the fraction labeled by each provider (default 0.06).
	LabelRate float64
	// TrainingRates is Fig 4's x axis (default 0.04..0.48 step 0.04).
	TrainingRates []float64
	// FixedProviders is Fig 4's provider count (default 9).
	FixedProviders int
}

func (o BodyOptions) withDefaults() BodyOptions {
	o.CohortOptions = o.CohortOptions.withDefaults()
	if o.Subjects <= 0 {
		o.Subjects = 20
	}
	if o.Segments <= 0 {
		o.Segments = 70
	}
	if len(o.ProviderCounts) == 0 {
		for c := 2; c <= 18; c += 2 {
			o.ProviderCounts = append(o.ProviderCounts, c)
		}
	}
	if o.LabelRate <= 0 {
		o.LabelRate = 0.06
	}
	if len(o.TrainingRates) == 0 {
		for r := 0.04; r <= 0.4801; r += 0.04 {
			o.TrainingRates = append(o.TrainingRates, r)
		}
	}
	if o.FixedProviders <= 0 {
		o.FixedProviders = 9
	}
	return o
}

func (o BodyOptions) genBases(g *rng.RNG) ([]Base, error) {
	ds, err := sensors.Generate(sensors.Config{
		Subjects:            o.Subjects,
		SegmentsPerActivity: o.Segments,
	}, g)
	if err != nil {
		return nil, err
	}
	bases := make([]Base, len(ds.Subjects))
	for i, s := range ds.Subjects {
		bases[i] = Base{X: svm.AugmentBias(s.X), Truth: s.Truth}
	}
	return bases, nil
}

// Fig3 reproduces Figure 3: body-sensor accuracy vs the number of users who
// provide labels, on labeled (a) and unlabeled (b) users.
func Fig3(o BodyOptions) (Figure, Figure, error) {
	o = o.withDefaults()
	xs := make([]float64, len(o.ProviderCounts))
	for i, c := range o.ProviderCounts {
		xs[i] = float64(c)
	}
	return sweep{
		id: "fig03", title: "Body sensors: accuracy vs # label providers",
		xlabel: "#providers", xs: xs, trials: o.Trials, workers: o.Workers, seed: o.Seed,
		genBases: func(_ float64, g *rng.RNG) ([]Base, error) { return o.genBases(g) },
		providersFor: func(x float64, n int, g *rng.RNG) []int {
			return randomProviders(int(x), n, g)
		},
		rateFor: func(float64) float64 { return o.LabelRate },
		cfgFor: func(float64) MethodsConfig {
			return MethodsConfig{Core: o.coreConfig()}
		},
	}.run()
}

// Fig4 reproduces Figure 4: body-sensor accuracy vs the labeled fraction of
// the providers' data, with a fixed provider count.
func Fig4(o BodyOptions) (Figure, Figure, error) {
	o = o.withDefaults()
	return sweep{
		id: "fig04", title: "Body sensors: accuracy vs training rate",
		xlabel: "train rate", xs: o.TrainingRates, trials: o.Trials, workers: o.Workers, seed: o.Seed,
		genBases: func(_ float64, g *rng.RNG) ([]Base, error) { return o.genBases(g) },
		providersFor: func(_ float64, n int, g *rng.RNG) []int {
			return randomProviders(o.FixedProviders, n, g)
		},
		rateFor: func(x float64) float64 { return x },
		cfgFor: func(float64) MethodsConfig {
			return MethodsConfig{Core: o.coreConfig()}
		},
	}.run()
}

// ---------------------------------------------------------------------
// HAR figures (paper §VI-C, Figs 5–7).

// HAROptions parameterize the smartphone (HAR) experiments.
type HAROptions struct {
	CohortOptions
	// Users and PerClass size the cohort (defaults 30 / 50).
	Users, PerClass int
	// Dim is the feature dimensionality (default 561).
	Dim int
	// ProviderCounts is Fig 5's x axis (default 6..27 step 3).
	ProviderCounts []int
	LabelRate      float64 // default 0.06
	// TrainingRates is Fig 6's x axis (default 0.04..0.48 step 0.04).
	TrainingRates  []float64
	FixedProviders int // default 15
	// LogLambdas is Fig 7's x axis (default 0..4 step 0.5).
	LogLambdas []float64
}

func (o HAROptions) withDefaults() HAROptions {
	o.CohortOptions = o.CohortOptions.withDefaults()
	if o.Users <= 0 {
		o.Users = 30
	}
	if o.PerClass <= 0 {
		o.PerClass = 50
	}
	if o.Dim <= 0 {
		o.Dim = 561
	}
	if len(o.ProviderCounts) == 0 {
		for c := 6; c <= 27; c += 3 {
			o.ProviderCounts = append(o.ProviderCounts, c)
		}
	}
	if o.LabelRate <= 0 {
		o.LabelRate = 0.06
	}
	if len(o.TrainingRates) == 0 {
		for r := 0.04; r <= 0.4801; r += 0.04 {
			o.TrainingRates = append(o.TrainingRates, r)
		}
	}
	if o.FixedProviders <= 0 {
		o.FixedProviders = 15
	}
	if len(o.LogLambdas) == 0 {
		for l := 0.0; l <= 4.001; l += 0.5 {
			o.LogLambdas = append(o.LogLambdas, l)
		}
	}
	return o
}

func (o HAROptions) genBases(g *rng.RNG) ([]Base, error) {
	ds, err := har.Generate(har.Config{Users: o.Users, PerClass: o.PerClass, Dim: o.Dim}, g)
	if err != nil {
		return nil, err
	}
	bases := make([]Base, len(ds.Users))
	for i, u := range ds.Users {
		bases[i] = Base{X: svm.AugmentBias(u.X), Truth: u.Truth}
	}
	return bases, nil
}

// Fig5 reproduces Figure 5: HAR accuracy vs # label providers.
func Fig5(o HAROptions) (Figure, Figure, error) {
	o = o.withDefaults()
	xs := make([]float64, len(o.ProviderCounts))
	for i, c := range o.ProviderCounts {
		xs[i] = float64(c)
	}
	return sweep{
		id: "fig05", title: "HAR: accuracy vs # label providers",
		xlabel: "#providers", xs: xs, trials: o.Trials, workers: o.Workers, seed: o.Seed,
		genBases: func(_ float64, g *rng.RNG) ([]Base, error) { return o.genBases(g) },
		providersFor: func(x float64, n int, g *rng.RNG) []int {
			return randomProviders(int(x), n, g)
		},
		rateFor: func(float64) float64 { return o.LabelRate },
		cfgFor: func(float64) MethodsConfig {
			return MethodsConfig{Core: o.coreConfig()}
		},
	}.run()
}

// Fig6 reproduces Figure 6: HAR accuracy vs training rate.
func Fig6(o HAROptions) (Figure, Figure, error) {
	o = o.withDefaults()
	return sweep{
		id: "fig06", title: "HAR: accuracy vs training rate",
		xlabel: "train rate", xs: o.TrainingRates, trials: o.Trials, workers: o.Workers, seed: o.Seed,
		genBases: func(_ float64, g *rng.RNG) ([]Base, error) { return o.genBases(g) },
		providersFor: func(_ float64, n int, g *rng.RNG) []int {
			return randomProviders(o.FixedProviders, n, g)
		},
		rateFor: func(x float64) float64 { return x },
		cfgFor: func(float64) MethodsConfig {
			return MethodsConfig{Core: o.coreConfig()}
		},
	}.run()
}

// Fig7 reproduces Figure 7: PLOS accuracy as a function of log10(λ) — the
// personalization↔globalization ablation.
func Fig7(o HAROptions) (Figure, Figure, error) {
	o = o.withDefaults()
	return sweep{
		id: "fig07", title: "HAR: PLOS accuracy vs log10(lambda)",
		xlabel: "log10(lambda)", xs: o.LogLambdas, trials: o.Trials, workers: o.Workers, seed: o.Seed,
		skip:     []string{MethodAll, MethodGroup, MethodSingle},
		genBases: func(_ float64, g *rng.RNG) ([]Base, error) { return o.genBases(g) },
		providersFor: func(_ float64, n int, g *rng.RNG) []int {
			return randomProviders(o.FixedProviders, n, g)
		},
		rateFor: func(float64) float64 { return o.LabelRate },
		cfgFor: func(x float64) MethodsConfig {
			cfg := o.coreConfig()
			cfg.Lambda = math.Pow(10, x)
			return MethodsConfig{Core: cfg}
		},
	}.run()
}

// ---------------------------------------------------------------------
// Synthetic figures (paper §VI-D, Figs 8–10).

// SynthOptions parameterize the synthetic experiments.
type SynthOptions struct {
	CohortOptions
	// UsersCount is the population size (default 10).
	UsersCount int
	// PerClass is points per class per user (default 200).
	PerClass int
	// RotationAngles is Fig 8's x axis (default 0..π step π/6).
	RotationAngles []float64
	// MaxAngle is Figs 9–10's fixed rotation (default π/2).
	MaxAngle float64
	// Fig8Providers/Fig8Labels: 5 providers × 8 labels (paper).
	Fig8Providers int
	Fig8Rate      float64
	// ProviderCounts is Fig 9's x axis (default 1..10); Fig9Rate its
	// labeling rate (default 0.02).
	ProviderCounts []int
	Fig9Rate       float64
	// TrainingRates is Fig 10's x axis (default 0.01..0.10); Fig10
	// uses FixedProviders providers (default 5).
	TrainingRates  []float64
	FixedProviders int
}

func (o SynthOptions) withDefaults() SynthOptions {
	o.CohortOptions = o.CohortOptions.withDefaults()
	if o.UsersCount <= 0 {
		o.UsersCount = 10
	}
	if o.PerClass <= 0 {
		o.PerClass = 200
	}
	if len(o.RotationAngles) == 0 {
		for k := 0; k <= 6; k++ {
			o.RotationAngles = append(o.RotationAngles, float64(k)*math.Pi/6)
		}
	}
	if o.MaxAngle == 0 {
		o.MaxAngle = math.Pi / 2
	}
	if o.Fig8Providers <= 0 {
		o.Fig8Providers = 5
	}
	if o.Fig8Rate <= 0 {
		o.Fig8Rate = 0.02 // 8 of 400 samples
	}
	if len(o.ProviderCounts) == 0 {
		for c := 1; c <= 10; c++ {
			o.ProviderCounts = append(o.ProviderCounts, c)
		}
	}
	if o.Fig9Rate <= 0 {
		o.Fig9Rate = 0.02
	}
	if len(o.TrainingRates) == 0 {
		for r := 0.01; r <= 0.1001; r += 0.01 {
			o.TrainingRates = append(o.TrainingRates, r)
		}
	}
	if o.FixedProviders <= 0 {
		o.FixedProviders = 5
	}
	return o
}

func (o SynthOptions) genBases(maxAngle float64, g *rng.RNG) ([]Base, error) {
	users, err := dataset.Population(o.UsersCount, maxAngle,
		dataset.SynthConfig{PerClass: o.PerClass}, g)
	if err != nil {
		return nil, err
	}
	bases := make([]Base, len(users))
	for i, u := range users {
		bases[i] = Base{X: svm.AugmentBias(u.X), Truth: u.Truth}
	}
	return bases, nil
}

// Fig8 reproduces Figure 8: synthetic accuracy vs the maximum rotation
// angle between users (the user-difference knob).
func Fig8(o SynthOptions) (Figure, Figure, error) {
	o = o.withDefaults()
	return sweep{
		id: "fig08", title: "Synthetic: accuracy vs rotation angle",
		xlabel: "max angle", xs: o.RotationAngles, trials: o.Trials, workers: o.Workers, seed: o.Seed,
		genBases: func(x float64, g *rng.RNG) ([]Base, error) { return o.genBases(x, g) },
		providersFor: func(_ float64, n int, g *rng.RNG) []int {
			return randomProviders(o.Fig8Providers, n, g)
		},
		rateFor: func(float64) float64 { return o.Fig8Rate },
		cfgFor: func(float64) MethodsConfig {
			return MethodsConfig{Core: o.coreConfig()}
		},
	}.run()
}

// Fig9 reproduces Figure 9: synthetic accuracy vs # label providers at a
// fixed π/2 rotation.
func Fig9(o SynthOptions) (Figure, Figure, error) {
	o = o.withDefaults()
	xs := make([]float64, len(o.ProviderCounts))
	for i, c := range o.ProviderCounts {
		xs[i] = float64(c)
	}
	return sweep{
		id: "fig09", title: "Synthetic: accuracy vs # label providers",
		xlabel: "#providers", xs: xs, trials: o.Trials, workers: o.Workers, seed: o.Seed,
		genBases: func(_ float64, g *rng.RNG) ([]Base, error) { return o.genBases(o.MaxAngle, g) },
		providersFor: func(x float64, n int, g *rng.RNG) []int {
			return randomProviders(int(x), n, g)
		},
		rateFor: func(float64) float64 { return o.Fig9Rate },
		cfgFor: func(float64) MethodsConfig {
			return MethodsConfig{Core: o.coreConfig()}
		},
	}.run()
}

// Fig10 reproduces Figure 10: synthetic accuracy vs training rate.
func Fig10(o SynthOptions) (Figure, Figure, error) {
	o = o.withDefaults()
	return sweep{
		id: "fig10", title: "Synthetic: accuracy vs training rate",
		xlabel: "train rate", xs: o.TrainingRates, trials: o.Trials, workers: o.Workers, seed: o.Seed,
		genBases: func(_ float64, g *rng.RNG) ([]Base, error) { return o.genBases(o.MaxAngle, g) },
		providersFor: func(_ float64, n int, g *rng.RNG) []int {
			return randomProviders(o.FixedProviders, n, g)
		},
		rateFor: func(x float64) float64 { return x },
		cfgFor: func(float64) MethodsConfig {
			return MethodsConfig{Core: o.coreConfig()}
		},
	}.run()
}

// ---------------------------------------------------------------------
// Distributed-system figures (paper §VI-E, Figs 11–13).

// ScaleOptions parameterize the scalability experiments.
type ScaleOptions struct {
	CohortOptions
	// UserCounts is the x axis (default 10..100 step 10).
	UserCounts []int
	// PerClass is points per class per user (default 50; the paper used
	// its full synthetic setup).
	PerClass int
	// ProviderFrac of users provide labels at LabelRate (defaults 0.5 /
	// 0.02).
	ProviderFrac float64
	LabelRate    float64
	// MaxAngle is the rotation spread (default π/2).
	MaxAngle float64
	// Phone scales distributed compute to device time for Fig 12.
	Phone cost.DeviceProfile
	// Dist overrides ADMM knobs (paper: ρ=1, ε_abs=1e-3).
	Dist core.DistConfig
}

func (o ScaleOptions) withDefaults() ScaleOptions {
	o.CohortOptions = o.CohortOptions.withDefaults()
	if len(o.UserCounts) == 0 {
		for c := 10; c <= 100; c += 10 {
			o.UserCounts = append(o.UserCounts, c)
		}
	}
	if o.PerClass <= 0 {
		o.PerClass = 50
	}
	if o.ProviderFrac <= 0 {
		o.ProviderFrac = 0.5
	}
	if o.LabelRate <= 0 {
		o.LabelRate = 0.02
	}
	if o.MaxAngle == 0 {
		o.MaxAngle = math.Pi / 2
	}
	return o
}

func (o ScaleOptions) buildUsers(tCount int, g *rng.RNG) ([]core.UserData, [][]float64, []int, error) {
	synth := SynthOptions{CohortOptions: o.CohortOptions, UsersCount: tCount, PerClass: o.PerClass}
	bases, err := synth.withDefaults().genBases(o.MaxAngle, g.Split("gen"))
	if err != nil {
		return nil, nil, nil, err
	}
	nProv := int(math.Round(o.ProviderFrac * float64(tCount)))
	if nProv < 1 {
		nProv = 1
	}
	providers := randomProviders(nProv, tCount, g.Split("providers"))
	users, truths, err := Assemble(bases, providers, o.LabelRate, g.Split("assemble"))
	return users, truths, providers, err
}

// Fig11 reproduces Figure 11: the accuracy difference between distributed
// and centralized PLOS across population sizes (two panels).
func Fig11(o ScaleOptions) (Figure, Figure, error) {
	o = o.withDefaults()
	root := rng.New(o.Seed)
	xs := make([]float64, len(o.UserCounts))
	var diffLabeled, diffUnlabeled []float64
	for i, tCount := range o.UserCounts {
		xs[i] = float64(tCount)
		// Independent trials fan out; the diffs fold in trial order below.
		type diff struct{ dl, du float64 }
		diffs, err := parallel.Map(o.Workers, o.Trials, func(trial int) (diff, error) {
			g := root.SplitN(fmt.Sprintf("fig11-%d", tCount), trial)
			users, truths, providers, err := o.buildUsers(tCount, g)
			if err != nil {
				return diff{}, err
			}
			cfg := MethodsConfig{Core: o.coreConfig(),
				Skip: []string{MethodAll, MethodGroup, MethodSingle}}
			cent, err := RunMethods(users, truths, providers, cfg, g.Split("cent"))
			if err != nil {
				return diff{}, fmt.Errorf("eval: Fig11 centralized: %w", err)
			}
			cfg.Distributed = true
			cfg.Dist = o.Dist
			dist, err := RunMethods(users, truths, providers, cfg, g.Split("dist"))
			if err != nil {
				return diff{}, fmt.Errorf("eval: Fig11 distributed: %w", err)
			}
			return diff{
				dl: dist[MethodPLOS].Labeled - cent[MethodPLOS].Labeled,
				du: dist[MethodPLOS].Unlabeled - cent[MethodPLOS].Unlabeled,
			}, nil
		})
		if err != nil {
			return Figure{}, Figure{}, err
		}
		var dl, du float64
		for _, d := range diffs {
			dl += d.dl
			du += d.du
		}
		diffLabeled = append(diffLabeled, dl/float64(o.Trials))
		diffUnlabeled = append(diffUnlabeled, du/float64(o.Trials))
	}
	a := Figure{ID: "fig11a", Title: "Distributed − centralized accuracy — users with labels",
		XLabel: "#users", X: xs,
		Curves: []Curve{{Name: "diff", Y: diffLabeled}}}
	b := Figure{ID: "fig11b", Title: "Distributed − centralized accuracy — users w/o labels",
		XLabel: "#users", X: xs,
		Curves: []Curve{{Name: "diff", Y: diffUnlabeled}}}
	return a, b, nil
}

// Fig12 reproduces Figure 12: running time of centralized PLOS (on the
// server) vs distributed PLOS (devices solving in parallel, wall-clock
// dominated by the slowest device per round, scaled to phone speed).
func Fig12(o ScaleOptions) (Figure, error) {
	o = o.withDefaults()
	root := rng.New(o.Seed)
	xs := make([]float64, len(o.UserCounts))
	var centY, distY []float64
	for i, tCount := range o.UserCounts {
		xs[i] = float64(tCount)
		var centSum, distSum float64
		// Trials stay sequential on purpose: this figure measures wall
		// clock, and concurrent trials would contend for the same cores.
		for trial := 0; trial < o.Trials; trial++ {
			g := root.SplitN(fmt.Sprintf("fig12-%d", tCount), trial)
			users, _, _, err := o.buildUsers(tCount, g)
			if err != nil {
				return Figure{}, err
			}
			start := time.Now()
			if _, _, err := core.TrainCentralized(users, o.coreConfig()); err != nil {
				return Figure{}, fmt.Errorf("eval: Fig12 centralized: %w", err)
			}
			centSum += time.Since(start).Seconds()

			simTime, err := DistributedSimTime(users, o.coreConfig(), o.Dist, o.Phone)
			if err != nil {
				return Figure{}, fmt.Errorf("eval: Fig12 distributed: %w", err)
			}
			distSum += simTime.Seconds()
		}
		centY = append(centY, centSum/float64(o.Trials))
		distY = append(distY, distSum/float64(o.Trials))
	}
	return Figure{ID: "fig12", Title: "Running time: centralized (server) vs distributed (phones)",
		XLabel: "#users", X: xs,
		Curves: []Curve{
			{Name: "Centralized", Y: centY},
			{Name: "Distributed", Y: distY},
		}}, nil
}

// SimCosts summarizes a simulated distributed deployment's resource use.
type SimCosts struct {
	// WallClock is the deployment's elapsed time: devices solve in
	// parallel, so each ADMM round costs the slowest device (at phone
	// speed) plus server aggregation.
	WallClock time.Duration
	// MeanDeviceCompute is the average per-device compute time at phone
	// speed (drives the energy model).
	MeanDeviceCompute time.Duration
}

// DistributedSimCosts runs distributed PLOS in-process while accounting the
// deployment's wall clock and per-device compute.
func DistributedSimCosts(users []core.UserData, cfg core.Config, dcfg core.DistConfig,
	phone cost.DeviceProfile) (SimCosts, error) {
	wall, mean, err := distributedSim(users, cfg, dcfg)
	if err != nil {
		return SimCosts{}, err
	}
	return SimCosts{
		WallClock:         phone.DeviceTime(wall.device) + wall.server,
		MeanDeviceCompute: phone.DeviceTime(mean),
	}, nil
}

// DistributedSimTime is the wall-clock-only convenience over
// DistributedSimCosts (used by Fig. 12).
func DistributedSimTime(users []core.UserData, cfg core.Config, dcfg core.DistConfig,
	phone cost.DeviceProfile) (time.Duration, error) {
	costs, err := DistributedSimCosts(users, cfg, dcfg, phone)
	if err != nil {
		return 0, err
	}
	return costs.WallClock, nil
}

type simWall struct {
	device, server time.Duration
}

// distributedSim is the shared simulation loop: returns the parallel wall
// components and the mean per-device compute time (at server speed).
func distributedSim(users []core.UserData, cfg core.Config, dcfg core.DistConfig) (simWall, time.Duration, error) {
	tCount := len(users)
	workers := make([]*core.Worker, tCount)
	for t, u := range users {
		wk, err := core.NewWorker(u, tCount, cfg)
		if err != nil {
			return simWall{}, 0, err
		}
		workers[t] = wk
	}
	dim := users[0].X.Cols
	ws := make([]mat.Vector, tCount)
	weights := make([]float64, tCount)
	for t, u := range users {
		ws[t], weights[t] = core.LocalInit(u, cfg)
	}
	w0 := core.FederatedInit(ws, weights)

	if dcfg.Rho <= 0 {
		dcfg.Rho = 1
	}
	if dcfg.EpsAbs <= 0 {
		dcfg.EpsAbs = 1e-3
	}
	if dcfg.MaxADMMIter <= 0 {
		dcfg.MaxADMMIter = 150
	}
	cccpTol := cfg.CCCPTol
	if cccpTol <= 0 {
		cccpTol = 1e-3
	}
	maxCCCP := cfg.MaxCCCPIter
	if maxCCCP <= 0 {
		maxCCCP = 20
	}
	lambda := cfg.Lambda
	if lambda <= 0 {
		lambda = 100
	}

	var deviceTime, serverTime time.Duration
	perDevice := make([]time.Duration, tCount)
	prevL := math.Inf(1)
	for round := 0; round < maxCCCP; round++ {
		for _, wk := range workers {
			wk.RefreshSigns(w0)
		}
		cons, err := admm.NewConsensus(dim, tCount, dcfg.Rho, admm.SquaredNormZ)
		if err != nil {
			return simWall{}, 0, err
		}
		cons.Z = w0.Clone()
		var lastVs []mat.Vector
		var lastXis []float64
		for iter := 0; iter < dcfg.MaxADMMIter; iter++ {
			xs := make([]mat.Vector, tCount)
			vs := make([]mat.Vector, tCount)
			xis := make([]float64, tCount)
			var roundMax time.Duration
			for t, wk := range workers {
				start := time.Now()
				w, v, xi, err := wk.Solve(cons.Z, cons.U[t], dcfg.Rho)
				if err != nil {
					return simWall{}, 0, err
				}
				d := time.Since(start)
				perDevice[t] += d
				if d > roundMax {
					roundMax = d
				}
				xs[t] = mat.SubVec(w, v)
				vs[t], xis[t] = v, xi
			}
			deviceTime += roundMax
			start := time.Now()
			res, err := cons.Step(xs)
			if err != nil {
				return simWall{}, 0, err
			}
			serverTime += time.Since(start)
			lastVs, lastXis = vs, xis
			if res.Converged(tCount, dcfg.EpsAbs) {
				break
			}
		}
		w0 = cons.Z
		obj := w0.SquaredNorm()
		for t := range workers {
			if lastVs != nil {
				obj += lambda/float64(tCount)*lastVs[t].SquaredNorm() + lastXis[t]
			}
		}
		if math.Abs(prevL-obj) <= cccpTol*(1+math.Abs(prevL)) {
			break
		}
		prevL = obj
	}
	var total time.Duration
	for _, d := range perDevice {
		total += d
	}
	return simWall{device: deviceTime, server: serverTime}, total / time.Duration(tCount), nil
}

// EnergyComparison quantifies the paper's §V energy claim: per-user energy
// of distributed training (on-device compute + parameter-exchange radio)
// against what the centralized design costs the same device (uploading its
// raw samples; training happens on the server). Reported in joules per
// user across population sizes.
func EnergyComparison(o ScaleOptions) (Figure, error) {
	o = o.withDefaults()
	phone := o.Phone
	root := rng.New(o.Seed)
	xs := make([]float64, len(o.UserCounts))
	var distY, rawY []float64
	for i, tCount := range o.UserCounts {
		xs[i] = float64(tCount)
		var distSum, rawSum float64
		// Sequential trials: the energy model is driven by measured device
		// compute time, which parallel trials would distort.
		for trial := 0; trial < o.Trials; trial++ {
			g := root.SplitN(fmt.Sprintf("energy-%d", tCount), trial)
			users, _, _, err := o.buildUsers(tCount, g)
			if err != nil {
				return Figure{}, err
			}
			costs, err := DistributedSimCosts(users, o.coreConfig(), o.Dist, phone)
			if err != nil {
				return Figure{}, fmt.Errorf("eval: EnergyComparison: %w", err)
			}
			kbPerUser, err := perUserTrafficKB(users, protocol.ServerConfig{
				Core: o.coreConfig(), Dist: o.Dist,
			})
			if err != nil {
				return Figure{}, fmt.Errorf("eval: EnergyComparison: %w", err)
			}
			traffic := transport.Stats{BytesSent: int64(kbPerUser * 1024)}
			distSum += phone.ComputeEnergyJ(costs.MeanDeviceCompute) + phone.CommEnergyJ(traffic)

			// Centralized alternative: the device radios its raw samples.
			u := users[0]
			raw := cost.RawUploadBytes(u.NumSamples(), u.X.Cols)
			rawSum += phone.CommEnergyJ(transport.Stats{BytesSent: raw, MessagesSent: 1})
		}
		distY = append(distY, distSum/float64(o.Trials))
		rawY = append(rawY, rawSum/float64(o.Trials))
	}
	return Figure{ID: "energy", Title: "Per-user energy: distributed PLOS vs raw upload (J)",
		XLabel: "#users", X: xs,
		Curves: []Curve{
			{Name: "Distributed J", Y: distY},
			{Name: "RawUpload J", Y: rawY},
		}}, nil
}

// Fig13 reproduces Figure 13: the per-user message overhead (KB) of the
// wire protocol across population sizes, measured on real transport
// connections (in-process pipes with deterministic wire sizes).
func Fig13(o ScaleOptions) (Figure, error) {
	o = o.withDefaults()
	root := rng.New(o.Seed)
	xs := make([]float64, len(o.UserCounts))
	var kbY []float64
	for i, tCount := range o.UserCounts {
		xs[i] = float64(tCount)
		// Byte counts are exact (not timed), so the trials fan out safely.
		kbs, err := parallel.Map(o.Workers, o.Trials, func(trial int) (float64, error) {
			g := root.SplitN(fmt.Sprintf("fig13-%d", tCount), trial)
			users, _, _, err := o.buildUsers(tCount, g)
			if err != nil {
				return 0, err
			}
			kb, err := perUserTrafficKB(users, protocol.ServerConfig{
				Core: o.coreConfig(), Dist: o.Dist,
			})
			if err != nil {
				return 0, fmt.Errorf("eval: Fig13: %w", err)
			}
			return kb, nil
		})
		if err != nil {
			return Figure{}, err
		}
		var sum float64
		for _, kb := range kbs {
			sum += kb
		}
		kbY = append(kbY, sum/float64(o.Trials))
	}
	return Figure{ID: "fig13", Title: "Per-user message overhead of distributed PLOS",
		XLabel: "#users", X: xs,
		Curves: []Curve{{Name: "KB/user", Y: kbY}}}, nil
}

// perUserTrafficKB trains over in-process pipes and averages each user's
// total traffic.
func perUserTrafficKB(users []core.UserData, cfg protocol.ServerConfig) (float64, error) {
	n := len(users)
	serverConns := make([]transport.Conn, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		sc, cc := transport.Pipe()
		serverConns[i] = sc
		wg.Add(1)
		go func(i int, conn transport.Conn) {
			defer wg.Done()
			_, _ = protocol.RunClient(conn, users[i], protocol.ClientOptions{Seed: int64(i)})
		}(i, cc)
	}
	res, err := protocol.RunServer(serverConns, cfg)
	if err != nil {
		return 0, err
	}
	wg.Wait()
	var totalKB float64
	for _, s := range res.PerUser {
		totalKB += float64(s.BytesSent+s.BytesReceived) / 1024
	}
	return totalKB / float64(n), nil
}

// AblationCu compares PLOS with and without the unlabeled loss term on a
// synthetic cohort: the semi-supervised term is what lets zero-label users
// benefit (DESIGN.md §5).
func AblationCu(o SynthOptions) (Figure, error) {
	o = o.withDefaults()
	root := rng.New(o.Seed)
	var withCu, withoutCu float64
	for trial := 0; trial < o.Trials; trial++ {
		g := root.SplitN("ablation-cu", trial)
		bases, err := o.genBases(o.MaxAngle, g.Split("gen"))
		if err != nil {
			return Figure{}, err
		}
		providers := randomProviders(o.FixedProviders, len(bases), g.Split("providers"))
		users, truths, err := Assemble(bases, providers, o.Fig9Rate, g.Split("assemble"))
		if err != nil {
			return Figure{}, err
		}
		skip := []string{MethodAll, MethodGroup, MethodSingle}
		on, err := RunMethods(users, truths, providers,
			MethodsConfig{Core: o.coreConfig(), Skip: skip}, g.Split("on"))
		if err != nil {
			return Figure{}, err
		}
		offCfg := o.coreConfig()
		offCfg.Cu = -1 // disables the unlabeled term
		off, err := RunMethods(users, truths, providers,
			MethodsConfig{Core: offCfg, Skip: skip}, g.Split("off"))
		if err != nil {
			return Figure{}, err
		}
		withCu += on[MethodPLOS].Unlabeled
		withoutCu += off[MethodPLOS].Unlabeled
	}
	tr := float64(o.Trials)
	return Figure{ID: "ablation-cu", Title: "Unlabeled-term ablation (accuracy on users w/o labels)",
		XLabel: "variant", X: []float64{0, 1},
		Curves: []Curve{{Name: "PLOS", Y: []float64{withoutCu / tr, withCu / tr}}}}, nil
}

// AblationBalanceGuard measures the class-balance heuristic on an
// all-unlabeled population, where unguarded max-margin clustering can
// collapse to the trivial one-sided assignment (DESIGN.md §5).
func AblationBalanceGuard(o SynthOptions) (Figure, error) {
	o = o.withDefaults()
	root := rng.New(o.Seed)
	var offAcc, onAcc float64
	for trial := 0; trial < o.Trials; trial++ {
		g := root.SplitN("ablation-guard", trial)
		bases, err := o.genBases(0, g.Split("gen")) // homogeneous users
		if err != nil {
			return Figure{}, err
		}
		// Nobody labels anything: pure joint clustering.
		users, truths, err := Assemble(bases, nil, 0, g.Split("assemble"))
		if err != nil {
			return Figure{}, err
		}
		for _, guard := range []bool{false, true} {
			cfg := o.coreConfig()
			cfg.BalanceGuard = guard
			model, _, err := core.TrainCentralized(users, cfg)
			if err != nil {
				return Figure{}, err
			}
			var acc float64
			for t, u := range users {
				pred := make([]float64, u.X.Rows)
				for i := 0; i < u.X.Rows; i++ {
					pred[i] = model.PredictUser(t, u.X.Row(i))
				}
				// Unsupervised: evaluate under the better polarity.
				acc += Accuracy(pred, truths[t], true)
			}
			acc /= float64(len(users))
			if guard {
				onAcc += acc
			} else {
				offAcc += acc
			}
		}
	}
	tr := float64(o.Trials)
	return Figure{ID: "ablation-guard", Title: "Balance-guard ablation (all users unlabeled, matched accuracy)",
		XLabel: "off=0 on=1", X: []float64{0, 1},
		Curves: []Curve{{Name: "PLOS", Y: []float64{offAcc / tr, onAcc / tr}}}}, nil
}

// AblationAsync compares the synchronous and asynchronous distributed
// trainers (accuracy and local-solve counts) on the same cohort — the
// paper's §VII future-work scenario.
func AblationAsync(o SynthOptions) (Figure, error) {
	o = o.withDefaults()
	root := rng.New(o.Seed)
	var syncAcc, asyncAcc, syncSolves, asyncSolves float64
	for trial := 0; trial < o.Trials; trial++ {
		g := root.SplitN("ablation-async", trial)
		bases, err := o.genBases(o.MaxAngle, g.Split("gen"))
		if err != nil {
			return Figure{}, err
		}
		providers := randomProviders(o.FixedProviders, len(bases), g.Split("providers"))
		users, truths, err := Assemble(bases, providers, o.Fig9Rate, g.Split("assemble"))
		if err != nil {
			return Figure{}, err
		}
		evalAcc := func(m *core.Model) float64 {
			var acc float64
			for t, u := range users {
				pred := make([]float64, u.X.Rows)
				for i := 0; i < u.X.Rows; i++ {
					pred[i] = m.PredictUser(t, u.X.Row(i))
				}
				acc += Accuracy(pred, truths[t], false)
			}
			return acc / float64(len(users))
		}
		sm, sInfo, err := core.TrainDistributed(users, o.coreConfig(), core.DistConfig{})
		if err != nil {
			return Figure{}, err
		}
		syncAcc += evalAcc(sm)
		syncSolves += float64(sInfo.ADMMIterations * len(users))
		am, aInfo, err := core.TrainAsync(users, o.coreConfig(), core.AsyncConfig{})
		if err != nil {
			return Figure{}, err
		}
		asyncAcc += evalAcc(am)
		asyncSolves += float64(aInfo.ADMMIterations)
	}
	tr := float64(o.Trials)
	return Figure{ID: "ablation-async", Title: "Sync vs async distributed PLOS",
		XLabel: "sync=0 async=1", X: []float64{0, 1},
		Curves: []Curve{
			{Name: "accuracy", Y: []float64{syncAcc / tr, asyncAcc / tr}},
			{Name: "solves", Y: []float64{syncSolves / tr, asyncSolves / tr}},
		}}, nil
}

// AblationWarmSets compares cold (paper-faithful) and warm cutting-plane
// working sets across CCCP rounds: accuracy should match while warm sets
// typically cut solver work.
func AblationWarmSets(o SynthOptions) (Figure, error) {
	o = o.withDefaults()
	root := rng.New(o.Seed)
	var coldAcc, warmAcc, coldQP, warmQP float64
	for trial := 0; trial < o.Trials; trial++ {
		g := root.SplitN("ablation-warm", trial)
		bases, err := o.genBases(o.MaxAngle, g.Split("gen"))
		if err != nil {
			return Figure{}, err
		}
		providers := randomProviders(o.FixedProviders, len(bases), g.Split("providers"))
		users, truths, err := Assemble(bases, providers, o.Fig9Rate, g.Split("assemble"))
		if err != nil {
			return Figure{}, err
		}
		for _, warm := range []bool{false, true} {
			cfg := o.coreConfig()
			cfg.WarmWorkingSets = warm
			model, info, err := core.TrainCentralized(users, cfg)
			if err != nil {
				return Figure{}, err
			}
			var acc float64
			for t, u := range users {
				pred := make([]float64, u.X.Rows)
				for i := 0; i < u.X.Rows; i++ {
					pred[i] = model.PredictUser(t, u.X.Row(i))
				}
				acc += Accuracy(pred, truths[t], false)
			}
			acc /= float64(len(users))
			if warm {
				warmAcc += acc
				warmQP += float64(info.QPIterations)
			} else {
				coldAcc += acc
				coldQP += float64(info.QPIterations)
			}
		}
	}
	tr := float64(o.Trials)
	return Figure{ID: "ablation-warm", Title: "Working-set warm start ablation",
		XLabel: "cold=0 warm=1", X: []float64{0, 1},
		Curves: []Curve{
			{Name: "accuracy", Y: []float64{coldAcc / tr, warmAcc / tr}},
			{Name: "QP iters", Y: []float64{coldQP / tr, warmQP / tr}},
		}}, nil
}
