package eval

import (
	"errors"
	"fmt"

	"plos/internal/core"
	"plos/internal/rng"
)

// CrossValidateConfigs implements the paper's parameter-selection procedure
// ("we select parameters ... based on the accuracy reported by
// leave-one-out cross-validation"), at user granularity: for each candidate
// configuration, each label provider in turn is demoted to an unlabeled
// user, PLOS is trained on the rest, and the held-out user's accuracy is
// recorded. The candidate with the best mean held-out accuracy wins.
//
// It returns the index of the selected candidate and the per-candidate mean
// scores (aligned with candidates).
func CrossValidateConfigs(bases []Base, providers []int, rate float64,
	candidates []core.Config, g *rng.RNG) (int, []float64, error) {
	if len(candidates) == 0 {
		return 0, nil, errors.New("eval: CrossValidateConfigs: no candidates")
	}
	if len(providers) < 2 {
		return 0, nil, errors.New("eval: CrossValidateConfigs: need at least two providers to hold one out")
	}
	scores := make([]float64, len(candidates))
	for gi, candidate := range candidates {
		var sum float64
		for hi, held := range providers {
			remaining := make([]int, 0, len(providers)-1)
			for _, p := range providers {
				if p != held {
					remaining = append(remaining, p)
				}
			}
			users, truths, err := Assemble(bases, remaining, rate,
				g.SplitN(fmt.Sprintf("cv-%d", gi), hi))
			if err != nil {
				return 0, nil, err
			}
			model, _, err := core.TrainCentralized(users, candidate)
			if err != nil {
				return 0, nil, fmt.Errorf("eval: CrossValidateConfigs candidate %d: %w", gi, err)
			}
			u := users[held]
			pred := make([]float64, u.X.Rows)
			for i := 0; i < u.X.Rows; i++ {
				pred[i] = model.PredictUser(held, u.X.Row(i))
			}
			sum += Accuracy(pred, truths[held], false)
		}
		scores[gi] = sum / float64(len(providers))
	}
	best := 0
	for gi := range candidates {
		if scores[gi] > scores[best] {
			best = gi
		}
	}
	return best, scores, nil
}

// CrossValidateLambda is the λ-only convenience over CrossValidateConfigs:
// it returns the selected λ from grid and the per-candidate scores.
func CrossValidateLambda(bases []Base, providers []int, rate float64,
	grid []float64, cfg core.Config, g *rng.RNG) (float64, []float64, error) {
	if len(grid) == 0 {
		return 0, nil, errors.New("eval: CrossValidateLambda: empty grid")
	}
	candidates := make([]core.Config, len(grid))
	for i, l := range grid {
		c := cfg
		c.Lambda = l
		candidates[i] = c
	}
	best, scores, err := CrossValidateConfigs(bases, providers, rate, candidates, g)
	if err != nil {
		return 0, nil, err
	}
	return grid[best], scores, nil
}
