package eval

import "testing"

func TestCompressionSweepSmall(t *testing.T) {
	pts, err := CompressionSweep(CompressionOptions{
		CohortOptions: CohortOptions{Trials: 1, Seed: 3, Lambda: 50},
		Users:         4, PerClass: 5, Dim: 32, Providers: 2,
		Schemes: []string{"q8"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want dense + q8", len(pts))
	}
	d, q := pts[0], pts[1]
	if d.Scheme != "dense" || d.RawBytes != 0 || d.CompBytes != 0 || d.Ratio != 1 || d.EFNorm != 0 {
		t.Errorf("dense point carries compression stats: %+v", d)
	}
	if q.Scheme != "q8" || q.RawBytes == 0 || q.CompBytes == 0 || q.Ratio <= 1 {
		t.Errorf("q8 point has no savings: %+v", q)
	}
	for _, p := range pts {
		if p.Accuracy < 0.5 || p.Accuracy > 1 {
			t.Errorf("%s: accuracy %v out of range", p.Scheme, p.Accuracy)
		}
	}
	if q.ObjGapRel < 0 {
		t.Errorf("q8: negative objective gap %v", q.ObjGapRel)
	}
}

func TestCompressionSweepBadScheme(t *testing.T) {
	_, err := CompressionSweep(CompressionOptions{
		CohortOptions: CohortOptions{Trials: 1, Seed: 1},
		Users:         2, PerClass: 4, Dim: 8,
		Schemes: []string{"zstd"},
	})
	if err == nil {
		t.Fatal("unknown scheme should error")
	}
}
