package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"plos/internal/core"
	"plos/internal/dataset"
	"plos/internal/mat"
	"plos/internal/rng"
	"plos/internal/svm"
)

func synthBases(t *testing.T, users, perClass int, maxAngle float64, seed int64) []Base {
	t.Helper()
	pop, err := dataset.Population(users, maxAngle, dataset.SynthConfig{PerClass: perClass}, rng.New(seed))
	if err != nil {
		t.Fatalf("Population: %v", err)
	}
	bases := make([]Base, len(pop))
	for i, u := range pop {
		bases[i] = Base{X: svm.AugmentBias(u.X), Truth: u.Truth}
	}
	return bases
}

func TestAssembleBasics(t *testing.T) {
	bases := synthBases(t, 4, 20, 0, 1)
	users, truths, err := Assemble(bases, []int{0, 2}, 0.1, rng.New(2))
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if len(users) != 4 || len(truths) != 4 {
		t.Fatalf("lengths: %d users, %d truths", len(users), len(truths))
	}
	// Providers 0 and 2 get ~10% of 40 = 4 labels; users 1 and 3 get none.
	for _, p := range []int{0, 2} {
		if got := users[p].NumLabeled(); got != 4 {
			t.Errorf("provider %d labels = %d, want 4", p, got)
		}
		// Stratified: both classes present in the labeled prefix.
		var pos, neg int
		for _, y := range users[p].Y {
			if y > 0 {
				pos++
			} else {
				neg++
			}
		}
		if pos == 0 || neg == 0 {
			t.Errorf("provider %d labels single-class: +%d/−%d", p, pos, neg)
		}
	}
	for _, np := range []int{1, 3} {
		if users[np].NumLabeled() != 0 {
			t.Errorf("non-provider %d has labels", np)
		}
	}
	// The labels must match the reordered truth prefix.
	for _, p := range []int{0, 2} {
		for i, y := range users[p].Y {
			if y != truths[p][i] {
				t.Fatalf("provider %d label %d mismatches truth", p, i)
			}
		}
	}
}

func TestAssembleRowPermutationPreservesPairs(t *testing.T) {
	// Each reordered (row, truth) pair must exist in the original base.
	bases := synthBases(t, 1, 10, 0, 3)
	users, truths, err := Assemble(bases, []int{0}, 0.2, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	orig := bases[0]
	for i := 0; i < users[0].X.Rows; i++ {
		row := users[0].X.Row(i)
		found := false
		for j := 0; j < orig.X.Rows; j++ {
			if row.Equal(orig.X.Row(j), 0) && truths[0][i] == orig.Truth[j] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("reordered row %d not found in the original data", i)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	bases := synthBases(t, 2, 5, 0, 5)
	if _, _, err := Assemble(bases, []int{7}, 0.1, rng.New(1)); err == nil {
		t.Error("out-of-range provider should error")
	}
	bad := []Base{{X: mat.NewMatrix(3, 2), Truth: []float64{1}}}
	if _, _, err := Assemble(bad, nil, 0.1, rng.New(1)); err == nil {
		t.Error("inconsistent base should error")
	}
}

func TestAccuracy(t *testing.T) {
	truth := []float64{1, 1, -1, -1}
	if got := Accuracy([]float64{1, 1, -1, 1}, truth, false); got != 0.75 {
		t.Errorf("Accuracy = %v", got)
	}
	// Fully inverted clustering scores 1.0 under matching.
	if got := Accuracy([]float64{-1, -1, 1, 1}, truth, true); got != 1 {
		t.Errorf("matched Accuracy = %v", got)
	}
	if got := Accuracy([]float64{-1, -1, 1, 1}, truth, false); got != 0 {
		t.Errorf("unmatched Accuracy = %v", got)
	}
	if got := Accuracy(nil, truth, false); got != 0 {
		t.Errorf("empty predictions = %v", got)
	}
}

// Property: matched accuracy is always >= 0.5 for binary predictions.
func TestPropertyMatchedAccuracyAtLeastHalf(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		g := rng.New(seed)
		pred := make([]float64, n)
		truth := make([]float64, n)
		for i := range pred {
			pred[i] = float64(g.Intn(2))*2 - 1
			truth[i] = float64(g.Intn(2))*2 - 1
		}
		return Accuracy(pred, truth, true) >= 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRunMethodsOrdering(t *testing.T) {
	// Paper-scale label counts (~8 labels per provider, as in Fig 9/10):
	// at 3 labels CCCP is known to be init-unstable — the paper reports a
	// 7.37% std at one provider — so this test pins the regime the
	// figures actually run in.
	bases := synthBases(t, 4, 20, math.Pi/4, 6)
	providers := []int{0, 1}
	users, truths, err := Assemble(bases, providers, 0.2, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	accs, err := RunMethods(users, truths, providers, MethodsConfig{
		Core: core.Config{Lambda: 50, Seed: 6},
	}, rng.New(8))
	if err != nil {
		t.Fatalf("RunMethods: %v", err)
	}
	for _, name := range Methods {
		a, ok := accs[name]
		if !ok {
			t.Fatalf("missing method %s", name)
		}
		if a.Labeled < 0.5 || a.Unlabeled < 0.45 {
			t.Errorf("%s accuracies suspiciously low: %+v", name, a)
		}
	}
	// PLOS should be at least competitive with every baseline on this
	// personalized workload (the paper's headline claim). The ceiling is
	// ~0.886 against the 10%-flipped truth.
	if accs[MethodPLOS].Unlabeled < 0.7 {
		t.Errorf("PLOS unlabeled accuracy = %v", accs[MethodPLOS].Unlabeled)
	}
	for _, base := range []string{MethodAll, MethodSingle} {
		if accs[MethodPLOS].Unlabeled+0.05 < accs[base].Unlabeled {
			t.Errorf("PLOS (%v) clearly below %s (%v) on unlabeled users",
				accs[MethodPLOS].Unlabeled, base, accs[base].Unlabeled)
		}
	}
}

func TestRunMethodsSkip(t *testing.T) {
	bases := synthBases(t, 3, 10, 0, 9)
	providers := []int{0}
	users, truths, err := Assemble(bases, providers, 0.1, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	accs, err := RunMethods(users, truths, providers, MethodsConfig{
		Core: core.Config{Seed: 9},
		Skip: []string{MethodGroup, MethodSingle, MethodAll},
	}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) != 1 {
		t.Errorf("accs = %v, want PLOS only", accs)
	}
}

func TestFigureFormat(t *testing.T) {
	f := Figure{ID: "figX", Title: "demo", XLabel: "x",
		X:      []float64{1, 2},
		Curves: []Curve{{Name: "m", Y: []float64{0.5, 0.75}}}}
	s := f.Format()
	for _, want := range []string{"figX", "demo", "m", "0.7500"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format missing %q:\n%s", want, s)
		}
	}
	// A short curve renders placeholders rather than panicking.
	f.Curves = append(f.Curves, Curve{Name: "short", Y: []float64{0.1}})
	if !strings.Contains(f.Format(), "-") {
		t.Error("short curve should render '-'")
	}
}

func TestCrossValidateLambda(t *testing.T) {
	bases := synthBases(t, 5, 15, math.Pi/3, 12)
	providers := []int{0, 1, 2}
	grid := []float64{1, 100}
	best, scores, err := CrossValidateLambda(bases, providers, 0.1, grid,
		core.Config{Seed: 12}, rng.New(13))
	if err != nil {
		t.Fatalf("CrossValidateLambda: %v", err)
	}
	if len(scores) != 2 {
		t.Fatalf("scores = %v", scores)
	}
	found := false
	for _, l := range grid {
		if best == l {
			found = true
		}
	}
	if !found {
		t.Errorf("best λ %v not from grid", best)
	}
	for i, s := range scores {
		if s < 0.4 || s > 1 {
			t.Errorf("score[%d] = %v out of range", i, s)
		}
	}
}

func TestCrossValidateLambdaErrors(t *testing.T) {
	bases := synthBases(t, 3, 5, 0, 14)
	if _, _, err := CrossValidateLambda(bases, []int{0, 1}, 0.1, nil,
		core.Config{}, rng.New(1)); err == nil {
		t.Error("empty grid should error")
	}
	if _, _, err := CrossValidateLambda(bases, []int{0}, 0.1, []float64{1},
		core.Config{}, rng.New(1)); err == nil {
		t.Error("single provider should error")
	}
}

func TestCrossValidateConfigs(t *testing.T) {
	bases := synthBases(t, 4, 15, math.Pi/4, 15)
	providers := []int{0, 1, 2}
	candidates := []core.Config{
		{Lambda: 1, Cl: 1, Cu: 0.2, Seed: 15},
		{Lambda: 100, Cl: 2, Cu: 0.1, Seed: 15},
	}
	best, scores, err := CrossValidateConfigs(bases, providers, 0.2, candidates, rng.New(16))
	if err != nil {
		t.Fatalf("CrossValidateConfigs: %v", err)
	}
	if best < 0 || best >= len(candidates) {
		t.Fatalf("best = %d", best)
	}
	if len(scores) != 2 {
		t.Fatalf("scores = %v", scores)
	}
	if scores[best] < scores[1-best] {
		t.Error("selected candidate must have the top score")
	}
	if _, _, err := CrossValidateConfigs(bases, providers, 0.2, nil, rng.New(1)); err == nil {
		t.Error("empty candidates should error")
	}
}

func TestFigureCSV(t *testing.T) {
	f := Figure{ID: "figX", XLabel: "x",
		X: []float64{1, 2},
		Curves: []Curve{
			{Name: "a", Y: []float64{0.5, math.NaN()}},
			{Name: "b", Y: []float64{0.25}},
		}}
	got := f.CSV()
	want := "x,a,b\n1,0.5,0.25\n2,,\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

// rngNew lets figure tests construct streams without importing rng twice.
func rngNew(seed int64) *rng.RNG { return rng.New(seed) }
