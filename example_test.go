package plos_test

import (
	"fmt"

	"plos"
)

// Two users: one labels four samples, one labels nothing. Both receive
// personalized classifiers.
func ExampleTrain() {
	users := []plos.User{
		{
			Features: [][]float64{{4, 4}, {-4, -4}, {5, 3}, {-3, -5}, {4, 5}, {-5, -4}},
			Labels:   []float64{1, -1, 1, -1},
		},
		{
			// No labels at all — knowledge is borrowed from user 0.
			Features: [][]float64{{3, 5}, {-5, -3}, {4, 4}, {-4, -4}},
		},
	}
	model, err := plos.Train(users, plos.WithLambda(100), plos.WithSeed(1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(model.Predict(0, []float64{4, 4}))
	fmt.Println(model.Predict(1, []float64{-4, -4}))
	// Output:
	// 1
	// -1
}

func ExampleModel_PredictGlobal() {
	users := []plos.User{
		{
			Features: [][]float64{{4, 4}, {-4, -4}, {5, 3}, {-3, -5}},
			Labels:   []float64{1, -1, 1, -1},
		},
		{
			Features: [][]float64{{3, 5}, {-5, -3}, {4, 4}, {-4, -4}},
			Labels:   []float64{1, -1},
		},
	}
	model, err := plos.Train(users, plos.WithSeed(1))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// A user the model has never seen uses the shared hyperplane.
	fmt.Println(model.PredictGlobal([]float64{5, 5}))
	// Output:
	// 1
}
