package plos

import (
	"reflect"
	"runtime"
	"testing"
)

// exactEqual is bit-level float equality — the determinism contract of
// WithWorkers is byte-identical models, not approximately equal ones.
func exactEqual(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: element %d differs: %v vs %v", label, i, a[i], b[i])
		}
	}
}

func detUsers(seed int64) []User {
	return makeUsers(seed, 3, 10, 0.2, func(i int) int {
		if i == 2 {
			return 0
		}
		return 8
	})
}

func compareModels(t *testing.T, label string, a, b *Model) {
	t.Helper()
	exactEqual(t, label+": global", a.Global(), b.Global())
	for u := 0; u < a.NumUsers(); u++ {
		exactEqual(t, label+": personalized", a.Personalized(u), b.Personalized(u))
	}
	if a.Stats().Objective != b.Stats().Objective {
		t.Fatalf("%s: objective %v vs %v", label, a.Stats().Objective, b.Stats().Objective)
	}
	if !reflect.DeepEqual(a.Stats(), b.Stats()) {
		t.Fatalf("%s: stats %+v vs %+v", label, a.Stats(), b.Stats())
	}
}

// TestTrainDeterministicAcrossWorkers is the tentpole property: for every
// seed, the centralized trainer produces a bit-identical model whether it
// runs strictly sequential or on an 8-worker pool.
func TestTrainDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		users := detUsers(seed)
		seq, err := Train(users, WithSeed(seed), WithWorkers(1))
		if err != nil {
			t.Fatalf("seed %d sequential: %v", seed, err)
		}
		par, err := Train(users, WithSeed(seed), WithWorkers(8))
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		compareModels(t, "Train", seq, par)
	}
}

func TestTrainDistributedDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		users := detUsers(seed)
		seq, err := TrainDistributed(users, WithSeed(seed), WithWorkers(1))
		if err != nil {
			t.Fatalf("seed %d sequential: %v", seed, err)
		}
		par, err := TrainDistributed(users, WithSeed(seed), WithWorkers(8))
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		compareModels(t, "TrainDistributed", seq, par)
	}
}

// TestTrainKernelDeterministicAcrossWorkers compares the kernel models by
// their exact decision values on every training sample (expansions are the
// model parameters, and scores expose every coefficient).
func TestTrainKernelDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		users := ringUsers(seed, 3, 8, func(i int) int {
			if i == 2 {
				return 0
			}
			return 6
		})
		seq, err := TrainKernel(users, RBFKernel(0.5), WithSeed(seed), WithWorkers(1))
		if err != nil {
			t.Fatalf("seed %d sequential: %v", seed, err)
		}
		par, err := TrainKernel(users, RBFKernel(0.5), WithSeed(seed), WithWorkers(8))
		if err != nil {
			t.Fatalf("seed %d parallel: %v", seed, err)
		}
		if seq.Stats().Objective != par.Stats().Objective {
			t.Fatalf("seed %d: objective %v vs %v", seed, seq.Stats().Objective, par.Stats().Objective)
		}
		for u, usr := range users {
			for _, x := range usr.Features {
				if seq.Score(u, x) != par.Score(u, x) {
					t.Fatalf("seed %d user %d: score %v vs %v on %v",
						seed, u, seq.Score(u, x), par.Score(u, x), x)
				}
			}
			if seq.PredictGlobal(usr.Features[0]) != par.PredictGlobal(usr.Features[0]) {
				t.Fatalf("seed %d user %d: global prediction differs", seed, u)
			}
		}
	}
}

// TestTrainIndependentOfGOMAXPROCS pins the default worker count (which is
// GOMAXPROCS) to two different values and demands the identical model: the
// pool size must never leak into the floats.
func TestTrainIndependentOfGOMAXPROCS(t *testing.T) {
	users := detUsers(7)
	old := runtime.GOMAXPROCS(1)
	one, err1 := Train(users, WithSeed(7))
	runtime.GOMAXPROCS(2)
	two, err2 := Train(users, WithSeed(7))
	runtime.GOMAXPROCS(old)
	if err1 != nil || err2 != nil {
		t.Fatalf("train: %v / %v", err1, err2)
	}
	compareModels(t, "GOMAXPROCS", one, two)
}
