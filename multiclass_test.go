package plos

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"plos/internal/rng"
)

// threeClassUsers builds users whose samples form three well-separated
// blobs (classes 0, 1, 2), cycling classes so labeled prefixes cover all.
func threeClassUsers(seed int64, count, perClass, labeledPerClass int) []MulticlassUser {
	g := rng.New(seed)
	centers := [][]float64{{6, 0}, {-3, 5}, {-3, -5}}
	users := make([]MulticlassUser, count)
	for t := 0; t < count; t++ {
		gu := g.SplitN("user", t)
		u := MulticlassUser{}
		n := 3 * perClass
		for i := 0; i < n; i++ {
			cls := i % 3
			u.Features = append(u.Features, []float64{
				centers[cls][0] + gu.Norm(),
				centers[cls][1] + gu.Norm(),
			})
			if i < 3*labeledPerClass {
				u.Labels = append(u.Labels, cls)
			}
		}
		users[t] = u
	}
	return users
}

func TestTrainMulticlass(t *testing.T) {
	users := threeClassUsers(1, 3, 15, 4)
	users[2].Labels = nil // a zero-label user
	m, err := TrainMulticlass(users, WithLambda(100), WithSeed(1))
	if err != nil {
		t.Fatalf("TrainMulticlass: %v", err)
	}
	if got := m.Classes(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Fatalf("Classes = %v", got)
	}
	for ti := range users {
		correct := 0
		for i, x := range users[ti].Features {
			if m.Predict(ti, x) == i%3 {
				correct++
			}
		}
		if acc := float64(correct) / float64(len(users[ti].Features)); acc < 0.85 {
			t.Errorf("user %d multiclass accuracy = %v", ti, acc)
		}
	}
	// Global prediction for a new user near class 1's center.
	if got := m.PredictGlobal([]float64{-3, 5}); got != 1 {
		t.Errorf("PredictGlobal = %v, want 1", got)
	}
	if m.Binary(1) == nil || m.Binary(99) != nil {
		t.Error("Binary lookup wrong")
	}
}

func TestTrainMulticlassErrors(t *testing.T) {
	if _, err := TrainMulticlass(nil); !errors.Is(err, ErrNoUsers) {
		t.Errorf("nil users: %v", err)
	}
	oneClass := []MulticlassUser{{
		Features: [][]float64{{1, 2}, {3, 4}},
		Labels:   []int{5, 5},
	}}
	if _, err := TrainMulticlass(oneClass); !errors.Is(err, ErrTooFewClasses) {
		t.Errorf("one class: %v", err)
	}
	tooMany := []MulticlassUser{{
		Features: [][]float64{{1, 2}},
		Labels:   []int{0, 1},
	}}
	if _, err := TrainMulticlass(tooMany); err == nil {
		t.Error("labels > samples should error")
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	users := makeUsers(5, 3, 10, 0.2, func(i int) int { return 8 })
	m, err := Train(users, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	if loaded.NumUsers() != m.NumUsers() {
		t.Fatalf("NumUsers mismatch")
	}
	for ti := range users {
		for _, x := range users[ti].Features[:5] {
			if m.Predict(ti, x) != loaded.Predict(ti, x) {
				t.Fatalf("prediction changed after round trip")
			}
			if m.Score(ti, x) != loaded.Score(ti, x) {
				t.Fatalf("score changed after round trip")
			}
		}
	}
	if m.PredictGlobal([]float64{1, 1}) != loaded.PredictGlobal([]float64{1, 1}) {
		t.Error("global prediction changed")
	}
}

func TestLoadModelErrors(t *testing.T) {
	tests := []struct {
		name string
		data string
	}{
		{"garbage", "not json"},
		{"wrong version", `{"version": 99, "w0": [1]}`},
		{"missing w0", `{"version": 1, "w0": []}`},
		{"ragged w", `{"version": 1, "w0": [1, 2], "w": [[1]]}`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadModel(strings.NewReader(tc.data)); !errors.Is(err, ErrBadModelFile) {
				t.Errorf("err = %v, want ErrBadModelFile", err)
			}
		})
	}
}

func TestTrainAsyncPublicAPI(t *testing.T) {
	// TrainAsync is exposed through the facade below; exercise it.
	users := makeUsers(6, 3, 10, 0.1, func(i int) int {
		if i == 2 {
			return 0
		}
		return 8
	})
	m, err := TrainAsync(users, WithSeed(6))
	if err != nil {
		t.Fatalf("TrainAsync: %v", err)
	}
	var acc float64
	for i, u := range users {
		acc += userAccuracy(m, i, u)
	}
	if acc/3 < 0.8 {
		t.Errorf("async facade accuracy = %v", acc/3)
	}
}

func TestLoadModelDroppedUser(t *testing.T) {
	// A model saved after a device dropout carries a null hyperplane;
	// it must round-trip without error.
	data := `{"version":1,"bias":true,"w0":[1,2],"w":[[3,4],null]}`
	m, err := LoadModel(strings.NewReader(data))
	if err != nil {
		t.Fatalf("LoadModel: %v", err)
	}
	if m.NumUsers() != 2 {
		t.Fatalf("NumUsers = %d", m.NumUsers())
	}
	if got := m.Predict(0, []float64{1}); got != 1 {
		t.Errorf("surviving user predict = %v", got)
	}
}
