package plos

import (
	"sync"
	"testing"
	"time"

	"plos/internal/core"
	"plos/internal/mat"
	"plos/internal/protocol"
	"plos/internal/svm"
	"plos/internal/transport"
)

// serveFaulted runs Serve over real TCP with one device's connection wrapped
// in transport.FailAfter(k). Clients dial sequentially so the server's user
// order matches ours, but the assertions below only rely on drop counts.
// It returns the server result (nil on server error), the server error, and
// the victim's client-side result (nil if the client errored).
func serveFaulted(t *testing.T, users []User, victim, k int) (*ServeResult, error, *protocol.ClientResult) {
	t.Helper()
	addrCh := make(chan string, 1)
	var (
		res       *ServeResult
		serveErr  error
		serveDone = make(chan struct{})
	)
	go func() {
		defer close(serveDone)
		res, serveErr = Serve("127.0.0.1:0", len(users), func(a string) { addrCh <- a },
			WithLambda(50))
	}()
	addr := <-addrCh

	results := make([]*protocol.ClientResult, len(users))
	var wg sync.WaitGroup
	for i := range users {
		conn, err := transport.Dial(addr)
		if err != nil {
			t.Fatalf("dial device %d: %v", i, err)
		}
		c := conn
		if i == victim {
			c = transport.FailAfter(conn, k)
		}
		wg.Add(1)
		go func(i int, c transport.Conn) {
			defer wg.Done()
			defer c.Close()
			x := svm.AugmentBias(mat.FromRows(users[i].Features))
			data := core.UserData{X: x, Y: append([]float64(nil), users[i].Labels...)}
			results[i], _ = protocol.RunClient(c, data, protocol.ClientOptions{Seed: int64(i)})
		}(i, c)
	}
	<-serveDone
	wg.Wait() // Serve closed its conns on return, so clients cannot block
	return res, serveErr, results[victim]
}

// TestServeFaultSweep cuts one device's TCP connection after exactly k wire
// operations for every k from 0 to the op count of a clean run. Every sweep
// point must end in one of two states — training completed with exactly the
// victim dropped, or a clean server error — within a watchdog deadline.
func TestServeFaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full TCP fault sweep is not -short material")
	}
	users := makeUsers(50, 3, 6, 0.1, func(i int) int {
		if i == 2 {
			return 0
		}
		return 6
	})
	const victim = 1

	clean, err, victimRes := serveFaulted(t, users, victim, 1<<30)
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if victimRes == nil {
		t.Fatal("clean run: victim client failed")
	}
	for i, d := range clean.Dropped {
		if d {
			t.Fatalf("clean run dropped device %d", i)
		}
	}
	nOps := victimRes.Traffic.MessagesSent + victimRes.Traffic.MessagesReceived
	if nOps < 10 {
		t.Fatalf("clean run used only %d ops; sweep would be vacuous", nOps)
	}
	t.Logf("clean run: victim performed %d wire ops", nOps)

	for k := 0; k <= nOps; k++ {
		var (
			res  *ServeResult
			rerr error
			done = make(chan struct{})
		)
		go func() {
			defer close(done)
			res, rerr, _ = serveFaulted(t, users, victim, k)
		}()
		select {
		case <-done:
		case <-time.After(120 * time.Second):
			t.Fatalf("k=%d: training hung", k)
		}
		if rerr != nil {
			continue // clean abort is an acceptable outcome
		}
		dropped := 0
		for _, d := range res.Dropped {
			if d {
				dropped++
			}
		}
		// k == nOps-1 kills only the victim's final Recv of MsgDone; the
		// server has already finished by then and legitimately reports a
		// clean, drop-free run it cannot distinguish from success.
		if k < nOps-1 && dropped != 1 {
			t.Errorf("k=%d: fault fired but %d devices dropped, want exactly 1", k, dropped)
		}
		if k >= nOps && dropped != 0 {
			t.Errorf("k=%d: fault never fires yet %d devices dropped", k, dropped)
		}
		if dropped > 1 {
			t.Errorf("k=%d: %d devices dropped, only the victim should", k, dropped)
		}
	}
}
