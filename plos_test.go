package plos

import (
	"errors"
	"math"
	"sync"
	"testing"

	"plos/internal/rng"
)

// makeUsers builds a small heterogeneous population: two Gaussian classes
// per user, optionally rotated, first `labeled` samples labeled.
func makeUsers(seed int64, count, perClass int, rotateEvery float64, labeledFor func(i int) int) []User {
	g := rng.New(seed)
	users := make([]User, count)
	for t := 0; t < count; t++ {
		rot := rng.Rotation2D(rotateEvery * float64(t))
		n := 2 * perClass
		features := make([][]float64, n)
		labels := make([]float64, 0, n)
		labeled := labeledFor(t)
		gu := g.SplitN("user", t)
		for i := 0; i < n; i++ {
			cls := 1.0
			if i%2 == 1 {
				cls = -1
			}
			p := rot.MulVec([]float64{cls*4 + gu.Norm(), cls*4 + gu.Norm()})
			features[i] = p
			if i < labeled {
				labels = append(labels, cls)
			}
		}
		users[t] = User{Features: features, Labels: labels}
	}
	return users
}

func userAccuracy(m *Model, t int, u User) float64 {
	correct := 0
	for i, x := range u.Features {
		cls := 1.0
		if i%2 == 1 {
			cls = -1
		}
		if m.Predict(t, x) == cls {
			correct++
		}
	}
	return float64(correct) / float64(len(u.Features))
}

func TestTrainEndToEnd(t *testing.T) {
	users := makeUsers(1, 3, 15, 0, func(i int) int {
		if i == 2 {
			return 0
		}
		return 10
	})
	m, err := Train(users, WithLambda(100), WithSeed(1))
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if m.NumUsers() != 3 {
		t.Fatalf("NumUsers = %d", m.NumUsers())
	}
	for i, u := range users {
		if acc := userAccuracy(m, i, u); acc < 0.9 {
			t.Errorf("user %d accuracy = %v", i, acc)
		}
	}
	st := m.Stats()
	if st.CCCPIterations == 0 || st.Constraints == 0 {
		t.Errorf("stats look empty: %+v", st)
	}
	if len(m.Global()) != 3 { // 2 features + bias
		t.Errorf("Global dims = %d", len(m.Global()))
	}
	if len(m.Personalized(0)) != 3 {
		t.Errorf("Personalized dims = %d", len(m.Personalized(0)))
	}
	// PredictGlobal works for an unseen sample.
	if got := m.PredictGlobal([]float64{5, 5}); got != 1 {
		t.Errorf("PredictGlobal = %v", got)
	}
	if m.Score(0, []float64{5, 5}) <= 0 {
		t.Error("Score should be positive deep in the +1 region")
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil); !errors.Is(err, ErrNoUsers) {
		t.Errorf("Train(nil) = %v", err)
	}
	if _, err := Train([]User{{}}); err == nil {
		t.Error("user without features should error")
	}
	bad := makeUsers(2, 1, 5, 0, func(int) int { return 4 })
	bad[0].Labels[0] = 3
	if _, err := Train(bad); err == nil {
		t.Error("bad label should error")
	}
}

func TestTrainDistributedMatches(t *testing.T) {
	users := makeUsers(3, 3, 12, 0.2, func(i int) int {
		if i == 0 {
			return 8
		}
		return 0
	})
	cm, err := Train(users, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	dm, err := TrainDistributed(users, WithSeed(3), WithADMM(1, 1e-3))
	if err != nil {
		t.Fatal(err)
	}
	var accC, accD float64
	for i, u := range users {
		accC += userAccuracy(cm, i, u)
		accD += userAccuracy(dm, i, u)
	}
	if math.Abs(accC-accD)/3 > 0.1 {
		t.Errorf("centralized %v vs distributed %v", accC/3, accD/3)
	}
	if dm.Stats().ADMMIterations == 0 {
		t.Error("distributed stats should report ADMM iterations")
	}
}

func TestWithoutBias(t *testing.T) {
	users := makeUsers(4, 2, 10, 0, func(int) int { return 8 })
	m, err := Train(users, WithoutBias(), WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Global()) != 2 {
		t.Errorf("WithoutBias dims = %d", len(m.Global()))
	}
}

func TestWithLossWeightsZeroCu(t *testing.T) {
	users := makeUsers(5, 2, 10, 0, func(int) int { return 20 })
	if _, err := Train(users, WithLossWeights(1, 0)); err != nil {
		t.Fatalf("cu=0 training failed: %v", err)
	}
}

func TestServeJoinLoopback(t *testing.T) {
	users := makeUsers(6, 3, 10, 0.1, func(i int) int {
		if i == 2 {
			return 0
		}
		return 8
	})
	addrCh := make(chan string, 1)
	var serveRes *ServeResult
	var serveErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveRes, serveErr = Serve("127.0.0.1:0", len(users),
			func(addr string) { addrCh <- addr }, WithSeed(6))
	}()
	addr := <-addrCh
	devices := make([]*DeviceModel, len(users))
	deviceErrs := make([]error, len(users))
	var dwg sync.WaitGroup
	for i := range users {
		dwg.Add(1)
		go func(i int) {
			defer dwg.Done()
			devices[i], deviceErrs[i] = Join(addr, users[i], WithSeed(int64(i)))
		}(i)
	}
	dwg.Wait()
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("Serve: %v", serveErr)
	}
	for i, err := range deviceErrs {
		if err != nil {
			t.Fatalf("Join %d: %v", i, err)
		}
	}
	for i, d := range devices {
		if d.Bytes == 0 || d.Messages == 0 {
			t.Errorf("device %d reports no traffic", i)
		}
		correct := 0
		for j, x := range users[i].Features {
			cls := 1.0
			if j%2 == 1 {
				cls = -1
			}
			if d.Predict(x) == cls {
				correct++
			}
		}
		if acc := float64(correct) / float64(len(users[i].Features)); acc < 0.8 {
			t.Errorf("device %d accuracy = %v", i, acc)
		}
		if len(d.Global()) != 3 || len(d.Personalized()) != 3 {
			t.Errorf("device %d model dims wrong", i)
		}
	}
	if len(serveRes.TrafficBytes) != len(users) {
		t.Errorf("TrafficBytes = %v", serveRes.TrafficBytes)
	}
}

// TestServeJoinAsyncLoopback exercises WithAsync end to end over real TCP:
// the DJAM mode negotiates in the hello exchange, trains without a global
// round clock, and every device still converges.
func TestServeJoinAsyncLoopback(t *testing.T) {
	users := makeUsers(7, 3, 10, 0.1, func(i int) int {
		if i == 2 {
			return 0
		}
		return 8
	})
	addrCh := make(chan string, 1)
	var serveRes *ServeResult
	var serveErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveRes, serveErr = Serve("127.0.0.1:0", len(users),
			func(addr string) { addrCh <- addr }, WithSeed(7), WithAsync())
	}()
	addr := <-addrCh
	devices := make([]*DeviceModel, len(users))
	deviceErrs := make([]error, len(users))
	var dwg sync.WaitGroup
	for i := range users {
		dwg.Add(1)
		go func(i int) {
			defer dwg.Done()
			devices[i], deviceErrs[i] = Join(addr, users[i], WithSeed(int64(i)), WithAsync())
		}(i)
	}
	dwg.Wait()
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("Serve: %v", serveErr)
	}
	for i, err := range deviceErrs {
		if err != nil {
			t.Fatalf("Join %d: %v", i, err)
		}
	}
	if st := serveRes.Model.Stats(); st.ADMMIterations == 0 {
		t.Error("async run should report folded updates as ADMM iterations")
	}
	for i, d := range devices {
		correct := 0
		for j, x := range users[i].Features {
			cls := 1.0
			if j%2 == 1 {
				cls = -1
			}
			if d.Predict(x) == cls {
				correct++
			}
		}
		if acc := float64(correct) / float64(len(users[i].Features)); acc < 0.8 {
			t.Errorf("device %d accuracy = %v", i, acc)
		}
	}
}

func TestServeValidation(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", 0, nil); err == nil {
		t.Error("0 devices should error")
	}
	if _, err := Join("127.0.0.1:1", User{}); err == nil {
		t.Error("empty user should error before dialing")
	}
}
