package plos

import (
	"fmt"
	"math"

	"plos/internal/features"
)

// Stream is an online classifier for one sensing node's live signal: push
// raw 5-channel samples as they arrive and receive a prediction for every
// completed sliding window (the paper's 3.2 s windows at 50% overlap,
// computed incrementally).
//
// Unlike the batch pipeline (ExtractWindows), which z-normalizes each
// channel over the whole recording, a stream cannot see the future: it
// normalizes with *running* mean/variance (Welford), so early-window
// features are computed against a still-settling baseline. Prime the
// stream with a few seconds of data before trusting its output.
type Stream struct {
	predict func(x []float64) float64
	cfg     SignalConfig

	factor int
	width  int
	stride int

	// decimation + per-channel running stats.
	tick  int
	stats [features.SignalsPerNode]welford
	// ring buffers of normalized, decimated samples per channel.
	buf   [features.SignalsPerNode][]float64
	count int // decimated samples seen
}

type welford struct {
	n        float64
	mean, m2 float64
}

func (w *welford) push(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / w.n
	w.m2 += d * (x - w.mean)
}

func (w *welford) normalize(x float64) float64 {
	if w.n < 2 {
		return 0
	}
	std := math.Sqrt(w.m2 / w.n)
	if std < 1e-12 {
		return 0
	}
	return (x - w.mean) / std
}

// NewStream builds a stream that classifies windows with predict — any
// classifier over the node's FeaturesPerNode-dimensional window features:
// model.PredictGlobal, a closure over model.Predict(t, ·), or a
// DeviceModel.Predict.
func NewStream(predict func(x []float64) float64, cfg SignalConfig) (*Stream, error) {
	if predict == nil {
		return nil, fmt.Errorf("plos: NewStream: nil predictor")
	}
	cfg = cfg.withDefaults()
	if cfg.SampleHz%cfg.TargetHz != 0 {
		return nil, fmt.Errorf("plos: NewStream: TargetHz %d must divide SampleHz %d",
			cfg.TargetHz, cfg.SampleHz)
	}
	width := int(cfg.WindowSec * float64(cfg.TargetHz))
	if width < 2 {
		return nil, fmt.Errorf("plos: NewStream: window too short (%d samples)", width)
	}
	return &Stream{
		predict: predict,
		cfg:     cfg,
		factor:  cfg.SampleHz / cfg.TargetHz,
		width:   width,
		stride:  width / 2,
	}, nil
}

// Prediction is one classified window.
type Prediction struct {
	// Class is the ±1 decision for the window ending at this sample.
	Class float64
	// EndSample is the (decimated) sample index the window ends at.
	EndSample int
}

// Push consumes one raw multichannel sample (accel x/y/z, gyro u/v) and
// returns a prediction when it completes a window, or nil otherwise.
func (s *Stream) Push(sample [5]float64) (*Prediction, error) {
	keep := s.tick%s.factor == 0
	s.tick++
	if !keep {
		return nil, nil
	}
	for c, v := range sample {
		s.stats[c].push(v)
		var norm float64
		if s.cfg.SkipNormalize {
			norm = v
		} else {
			norm = s.stats[c].normalize(v)
		}
		s.buf[c] = append(s.buf[c], norm)
		if len(s.buf[c]) > s.width {
			s.buf[c] = s.buf[c][1:]
		}
	}
	s.count++
	if s.count < s.width || (s.count-s.width)%s.stride != 0 {
		return nil, nil
	}
	sigs := make([][]float64, features.SignalsPerNode)
	for c := range sigs {
		sigs[c] = s.buf[c]
	}
	f, err := features.NodeFeatures(sigs)
	if err != nil {
		return nil, fmt.Errorf("plos: Stream.Push: %w", err)
	}
	return &Prediction{Class: s.predict(f), EndSample: s.count}, nil
}

// Reset clears the buffers and running statistics (e.g. when the device is
// re-mounted).
func (s *Stream) Reset() {
	s.tick, s.count = 0, 0
	for c := range s.buf {
		s.buf[c] = nil
		s.stats[c] = welford{}
	}
}
