package plos

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"plos/internal/obs"
)

// TestObserverFlightBitIdentical extends the observer acceptance gate to the
// flight recorder: recording the full convergence trajectory (and the
// telemetry it implies) must not move a single bit of the trained model.
func TestObserverFlightBitIdentical(t *testing.T) {
	users := detUsers(14)
	plainC, err := Train(users, WithSeed(14))
	if err != nil {
		t.Fatalf("Train plain: %v", err)
	}
	plainD, err := TrainDistributed(users, WithSeed(14))
	if err != nil {
		t.Fatalf("TrainDistributed plain: %v", err)
	}
	var flight strings.Builder
	ob := NewObserver(WithTraceCapacity(64), WithFlightRecorder(&flight))
	obsC, err := Train(users, WithSeed(14), WithObserver(ob))
	if err != nil {
		t.Fatalf("Train recorded: %v", err)
	}
	obsD, err := TrainDistributed(users, WithSeed(14), WithObserver(ob))
	if err != nil {
		t.Fatalf("TrainDistributed recorded: %v", err)
	}
	compareModels(t, "Train flight recorder on/off", plainC, obsC)
	compareModels(t, "TrainDistributed flight recorder on/off", plainD, obsD)

	out := flight.String()
	for _, want := range []string{
		`"rec":"run-start","trainer":"centralized"`,
		`"rec":"run-start","trainer":"distributed"`,
		`"rec":"cccp-iteration"`,
		`"rec":"cut-round"`,
		`"rec":"admm-round"`,
		`"rec":"run-end"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("flight stream missing %s", want)
		}
	}
	if err := ob.FlightErr(); err != nil {
		t.Errorf("FlightErr: %v", err)
	}
}

// runServeJoin trains over loopback TCP and returns the global hyperplane
// plus each device's personalized one.
func runServeJoin(t *testing.T, users []User, serveOpts ...Option) ([]float64, [][]float64) {
	t.Helper()
	addrCh := make(chan string, 1)
	var res *ServeResult
	var serveErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		res, serveErr = Serve("127.0.0.1:0", len(users),
			func(addr string) { addrCh <- addr },
			append([]Option{WithSeed(21)}, serveOpts...)...)
	}()
	addr := <-addrCh
	personals := make([][]float64, len(users))
	deviceErrs := make([]error, len(users))
	var dwg sync.WaitGroup
	for i := range users {
		dwg.Add(1)
		go func(i int) {
			defer dwg.Done()
			dm, err := Join(addr, users[i], WithSeed(int64(i)))
			if err == nil {
				personals[i] = dm.Personalized()
			}
			deviceErrs[i] = err
		}(i)
	}
	dwg.Wait()
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("Serve: %v", serveErr)
	}
	for i, err := range deviceErrs {
		if err != nil {
			t.Fatalf("Join %d: %v", i, err)
		}
	}
	return res.Model.Global(), personals
}

// TestServeJoinTelemetry: over real loopback TCP, a flight-recording
// observer on Serve must request the telemetry piggyback and merge every
// device's replies into the trace. No cross-run model comparison here: TCP
// accept order assigns user slots, so two Serve runs permute federated-init
// and consensus summation at ULP level regardless of telemetry — the
// bit-identity half of this contract lives in the deterministic pipes
// harness (protocol.TestTelemetryBitIdentical).
func TestServeJoinTelemetry(t *testing.T) {
	users := makeUsers(21, 3, 10, 0.1, func(i int) int {
		if i == 1 {
			return 0
		}
		return 8
	})
	var flight strings.Builder
	ob := NewObserver(WithFlightRecorder(&flight))
	w0, personals := runServeJoin(t, users, WithObserver(ob))
	if len(w0) == 0 {
		t.Fatal("empty global hyperplane")
	}
	for u, w := range personals {
		if len(w) != len(w0) {
			t.Fatalf("device %d personalized dim %d, want %d", u, len(w), len(w0))
		}
	}
	out := flight.String()
	if !strings.Contains(out, `"rec":"device-round"`) {
		t.Error("no device-round records: telemetry was not requested or merged")
	}
	if !strings.Contains(out, `"rec":"run-start","trainer":"server"`) {
		t.Error("no server run-start record")
	}
	for u := 0; u < len(users); u++ {
		if !strings.Contains(out, `"user":`+string(rune('0'+u))+`,"arrive_ns"`) {
			t.Errorf("no merged telemetry for device %d", u)
		}
	}
	if err := ob.FlightErr(); err != nil {
		t.Errorf("FlightErr: %v", err)
	}
}

// TestConcurrentExportDuringTraining is the race gate for the tracing layer:
// spans, metrics and flight records are emitted by a live distributed run
// while every export surface is scraped concurrently. Run under -race.
func TestConcurrentExportDuringTraining(t *testing.T) {
	users := detUsers(15)
	ob := NewObserver(WithTraceCapacity(32), WithFlightRecorder(nil))
	done := make(chan struct{})
	var stop atomic.Bool
	var swg sync.WaitGroup
	for i := 0; i < 3; i++ {
		swg.Add(1)
		go func() {
			defer swg.Done()
			for !stop.Load() {
				_ = ob.WritePrometheus(io.Discard)
				_ = ob.WriteJSON(io.Discard)
				_ = ob.WriteTraceJSONL(io.Discard)
				snap := ob.TraceSnapshot()
				if _, err := json.Marshal(snap); err != nil {
					t.Errorf("TraceSnapshot not marshalable: %v", err)
					return
				}
			}
		}()
	}
	go func() {
		defer close(done)
		if _, err := TrainDistributed(users, WithSeed(15), WithObserver(ob)); err != nil {
			t.Errorf("TrainDistributed: %v", err)
		}
		if _, err := Train(users, WithSeed(15), WithObserver(ob)); err != nil {
			t.Errorf("Train: %v", err)
		}
	}()
	<-done
	stop.Store(true)
	swg.Wait()
}

// TestTraceSnapshotSurface: the /debug/trace payload carries span totals,
// the drop counter, and the flight tail.
func TestTraceSnapshotSurface(t *testing.T) {
	users := detUsers(16)
	ob := NewObserver(WithTraceCapacity(8), WithFlightRecorder(nil))
	if _, err := Train(users, WithSeed(16), WithObserver(ob)); err != nil {
		t.Fatalf("Train: %v", err)
	}
	snap := ob.TraceSnapshot()
	phases, ok := snap["span_phase_seconds"].(map[string]obs.SpanPhaseTotal)
	if !ok || len(phases) == 0 {
		t.Fatalf("span_phase_seconds missing or empty: %T", snap["span_phase_seconds"])
	}
	if _, ok := phases["qp-solve"]; !ok {
		t.Error("no qp-solve phase total after training")
	}
	if snap["spans_dropped"].(int64) == 0 {
		t.Error("tiny ring did not drop spans")
	}
	if snap["flight_recorded"].(int64) == 0 {
		t.Error("tail-only recorder saw no records")
	}
	tail, ok := snap["flight_tail"].([]json.RawMessage)
	if !ok || len(tail) == 0 {
		t.Fatal("flight_tail missing")
	}

	rec := httptest.NewRecorder()
	ob.TraceHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	var decoded map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("/debug/trace not JSON: %v", err)
	}
	if _, ok := decoded["flight_tail"]; !ok {
		t.Error("/debug/trace missing flight_tail")
	}

	// Nil observer: every trace surface stays safe.
	var nilOb *Observer
	if nilOb.TraceSnapshot() == nil {
		t.Error("nil observer TraceSnapshot returned nil map")
	}
	if err := nilOb.FlightErr(); err != nil {
		t.Errorf("nil observer FlightErr: %v", err)
	}
}
