// Package plos is a from-scratch Go implementation of PLOS, the
// Personalized Learning framework for mObile Sensing applications
// (Jiang et al., ICDCS 2018).
//
// PLOS jointly trains one classifier per user from a population in which
// many users label little or none of their data: a shared global
// hyperplane captures what all users have in common, per-user offsets
// capture how each user differs, and unlabeled samples contribute through
// maximum-margin clustering terms. Training is available in two modes:
//
//   - Train: the centralized solver (CCCP + cutting planes + a QP dual) —
//     all data in one process.
//   - TrainDistributed: the same objective solved by consensus ADMM with
//     per-user local solvers — in-process here, or across real devices via
//     Serve/Join, where raw data never leaves a device and only model
//     parameters cross the wire.
//
// The minimal flow:
//
//	users := []plos.User{
//	    {Features: laura, Labels: []float64{+1, -1, +1}}, // labels cover the first rows
//	    {Features: noah},                                 // no labels at all
//	}
//	model, err := plos.Train(users, plos.WithLambda(100))
//	...
//	class := model.Predict(1, sample) // Noah's personalized classifier
//
// See DESIGN.md for the algorithm and EXPERIMENTS.md for the reproduction
// of the paper's evaluation.
package plos

import (
	"fmt"
	"time"

	"plos/internal/compress"
	"plos/internal/core"
	"plos/internal/mat"
	"plos/internal/svm"
)

// User is one participant's training data. Features rows are samples;
// Labels, when present, label the FIRST len(Labels) rows with ±1 (the
// paper's l_t prefix convention). A user with no labels still contributes
// the structure of their unlabeled data and receives a personalized
// classifier.
type User struct {
	Features [][]float64
	Labels   []float64
}

// options aggregates the functional options.
type options struct {
	core  core.Config
	dist  core.DistConfig
	async core.AsyncConfig
	bias  bool
	ft    ftOptions
	// compressSpec is the WithCompression argument, parsed by Serve/Join
	// (an Option cannot return an error); comp is the parsed result.
	compressSpec string
	comp         compress.Config
	// wireAsync selects the asynchronous DJAM protocol mode on Serve/Join.
	wireAsync bool
}

// ftOptions collects the fault-tolerance knobs of Serve and Join (see
// docs/FAULT_TOLERANCE.md). All zero values disable the corresponding
// mechanism.
type ftOptions struct {
	opTimeout       time.Duration
	retries         int
	roundTimeout    time.Duration
	quorum          float64
	shardQuorum     int
	maxStale        int
	resume          bool
	maxRedials      int
	session         int64
	onSession       func(int64)
	checkpointPath  string
	checkpointEvery int
}

func defaultOptions() options {
	return options{bias: true}
}

// Option customizes training.
type Option func(*options)

// WithLambda sets the personalization strength λ: large values tie every
// user to the global model, small values let users follow their own data.
// The paper finds a broad optimum near λ = 100 (Fig. 7).
func WithLambda(lambda float64) Option {
	return func(o *options) { o.core.Lambda = lambda }
}

// WithLossWeights sets Cl and Cu, the loss weights of labeled and
// unlabeled samples (defaults 1 and 0.2). Pass cu = 0 to ignore unlabeled
// data entirely.
func WithLossWeights(cl, cu float64) Option {
	return func(o *options) {
		o.core.Cl = cl
		if cu == 0 {
			o.core.Cu = -1 // the core sentinel for "disabled"
		} else {
			o.core.Cu = cu
		}
	}
}

// WithEpsilon sets the cutting-plane tolerance ε (default 1e-3).
func WithEpsilon(eps float64) Option {
	return func(o *options) { o.core.Epsilon = eps }
}

// WithSeed fixes all internal randomness for reproducible training.
func WithSeed(seed int64) Option {
	return func(o *options) { o.core.Seed = seed }
}

// WithoutBias disables the automatic constant-1 feature: hyperplanes then
// pass through the origin (the paper's footnote-1 convention in reverse).
func WithoutBias() Option {
	return func(o *options) { o.bias = false }
}

// WithBalanceGuard enables the class-balance heuristic that keeps
// zero-label users' max-margin clustering from collapsing to one side.
func WithBalanceGuard() Option {
	return func(o *options) { o.core.BalanceGuard = true }
}

// WithWarmWorkingSets keeps cutting-plane working sets across CCCP rounds
// (faster, slightly less faithful to the paper's Algorithm 1).
func WithWarmWorkingSets() Option {
	return func(o *options) { o.core.WarmWorkingSets = true }
}

// WithADMM sets the distributed solver's penalty ρ and absolute stopping
// tolerance ε_abs (defaults 1 and 1e-3, the paper's §VI-E settings). It
// has no effect on centralized training.
func WithADMM(rho, epsAbs float64) Option {
	return func(o *options) {
		o.dist.Rho = rho
		o.dist.EpsAbs = epsAbs
	}
}

// WithWorkers bounds the goroutine fan-out of every trainer: n == 1 is
// strictly sequential, n <= 0 restores the default of runtime.GOMAXPROCS(0).
// The trained model is bit-identical for any value — parallel sections write
// only disjoint index-addressed slots and every floating-point reduction
// folds in index order (see internal/parallel).
func WithWorkers(n int) Option {
	return func(o *options) {
		o.core.Workers = n
		o.dist.Workers = n
	}
}

// WithParallelWorkers runs distributed users' local solvers on separate
// goroutines, mirroring devices computing concurrently.
//
// Deprecated: local solvers now run on a bounded pool by default; use
// WithWorkers to bound or serialize it. The option is kept for source
// compatibility and has no additional effect.
func WithParallelWorkers() Option {
	return func(o *options) { o.dist.Parallel = true }
}

// WithAsyncBarrier sets the partial-barrier size of TrainAsync: the number
// of fresh device updates that triggers a consensus refresh (default T/4;
// T reproduces a synchronous schedule). It has no effect on the other
// trainers.
func WithAsyncBarrier(updates int) Option {
	return func(o *options) { o.async.Barrier = updates }
}

// WithAsync switches Serve and Join to the fully asynchronous DJAM protocol
// mode: devices push an update whenever a local solve finishes, the
// coordinator folds each arrival into the consensus immediately under a
// staleness-weighted rule (weight 1/(1+min(s, WithMaxStale)) for an arrival
// s fleet rounds old), and there is no global ADMM round clock — per-device
// consensus snapshots replace the lockstep broadcast. A straggler then
// delays only its own contribution, not the fleet. The mode is negotiated
// in the hello exchange; a Join with WithAsync fails fast against a
// synchronous coordinator. Objectives converge to within a few percent of
// the synchronous mode's but are not bit-identical to it (docs/ASYNC.md
// discusses the convergence caveat). No effect on the in-process trainers
// (see TrainAsync) or on ServeAggregator's sharded plane, which is lockstep
// by construction.
func WithAsync() Option {
	return func(o *options) { o.wireAsync = true }
}

// WithOpTimeout bounds every single network send and receive on Serve/Join
// connections. A blocked peer then surfaces as a timeout error (handled by
// the straggler policy) instead of hanging the round forever. 0 disables.
func WithOpTimeout(d time.Duration) Option {
	return func(o *options) { o.ft.opTimeout = d }
}

// WithRetries layers seeded retry/backoff over Serve/Join connections:
// transient transport failures (timeouts on message-preserving transports,
// injected chaos faults) are retried up to n attempts per operation with
// capped exponential backoff and deterministic jitter. Duplicate deliveries
// are suppressed by sequence numbers. n <= 1 disables the layer.
func WithRetries(n int) Option {
	return func(o *options) { o.ft.retries = n }
}

// WithRoundTimeout sets the coordinator's per-ADMM-iteration deadline:
// devices that miss it are carried on their last reported solution for up
// to WithMaxStale rounds, then dropped. 0 (the default) waits forever.
func WithRoundTimeout(d time.Duration) Option {
	return func(o *options) { o.ft.roundTimeout = d }
}

// WithQuorum aborts training when fewer than ceil(frac·T) of the original
// T devices remain active (ErrTooFewActive from the protocol layer).
func WithQuorum(frac float64) Option {
	return func(o *options) { o.ft.quorum = frac }
}

// WithQuorum's device-tier rule lifted to shards: WithShardQuorum sets the
// minimum number of shards that must be represented in every ServeAggregator
// reduce — by a fresh partial or a stale carry within WithMaxStale rounds.
// Below it the run aborts with an error naming the first dead shard. n <= 0
// (the default) requires every shard (strict lockstep). It has no effect
// outside ServeAggregator.
func WithShardQuorum(n int) Option {
	return func(o *options) { o.ft.shardQuorum = n }
}

// WithMaxStale sets how many consecutive rounds a straggler's last local
// solution may be reused before the device is dropped (default 3). On
// ServeAggregator the same knob bounds how long a detached shard's last
// partial sums keep being folded while it restarts (docs/SHARDING.md).
func WithMaxStale(k int) Option {
	return func(o *options) { o.ft.maxStale = k }
}

// WithSessionResume enables session resume. On Serve, the coordinator
// issues session tokens, keeps accepting connections during training, and
// re-attaches devices that redial with their token. On Join, a failed
// connection is redialed up to maxRedials times with seeded backoff,
// resuming via the token. maxRedials only matters for Join.
func WithSessionResume(maxRedials int) Option {
	return func(o *options) {
		o.ft.resume = true
		o.ft.maxRedials = maxRedials
	}
}

// WithSessionToken presents an existing session token on Join's first
// hello — used by a restarted device process to reclaim its slot (pair with
// a coordinator restored from a checkpoint).
func WithSessionToken(token int64) Option {
	return func(o *options) { o.ft.session = token }
}

// WithSessionNotify registers a callback invoked whenever the coordinator
// issues or changes this device's session token — persist it so a crashed
// device can resume with WithSessionToken.
func WithSessionNotify(f func(token int64)) Option {
	return func(o *options) { o.ft.onSession = f }
}

// WithCompression enables codec-v4 parameter-payload compression on
// Serve/Join connections. The spec composes comma- (or plus-) separated
// terms: "q8"/"q16" (linear quantization with error feedback), "topk:F"
// (keep the top fraction F of coordinates per frame, delta-coded indices),
// and "delta" (code against the peer's last reconstructed round). "" or
// "off" disables. Both ends negotiate in the hello exchange and fall back
// to the intersection of their specs — against a peer without compression
// the wire stays bit-identical to codec v3. A malformed spec surfaces as
// an error from Serve/Join. See docs/WIRE_COMPRESSION.md.
func WithCompression(spec string) Option {
	return func(o *options) { o.compressSpec = spec }
}

// WithCheckpoint makes Serve snapshot its trainer state to path atomically
// after every `every`-th CCCP round (every <= 0 means every round). If the
// file already exists when Serve starts, training resumes from it: devices
// must reconnect with their session tokens (WithSessionToken) and the run
// continues from the recorded round.
func WithCheckpoint(path string, every int) Option {
	return func(o *options) {
		o.ft.checkpointPath = path
		o.ft.checkpointEvery = every
	}
}

// Model is a trained PLOS model.
type Model struct {
	model *core.Model
	info  core.TrainInfo
	bias  bool
}

// ErrNoUsers is returned when Train is called with an empty population.
var ErrNoUsers = core.ErrNoUsers

func toUserData(users []User, bias bool) ([]core.UserData, error) {
	if len(users) == 0 {
		return nil, ErrNoUsers
	}
	out := make([]core.UserData, len(users))
	for t, u := range users {
		if len(u.Features) == 0 {
			return nil, fmt.Errorf("plos: user %d: %w", t, core.ErrEmptyUser)
		}
		x := mat.FromRows(u.Features)
		if bias {
			x = svm.AugmentBias(x)
		}
		out[t] = core.UserData{X: x, Y: append([]float64(nil), u.Labels...)}
	}
	return out, nil
}

// Train fits the centralized PLOS model (paper Algorithm 1).
func Train(users []User, opts ...Option) (*Model, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	data, err := toUserData(users, o.bias)
	if err != nil {
		return nil, err
	}
	m, info, err := core.TrainCentralized(data, o.core)
	if err != nil {
		return nil, fmt.Errorf("plos: Train: %w", err)
	}
	return &Model{model: m, info: info, bias: o.bias}, nil
}

// TrainDistributed fits the same objective with the ADMM-based distributed
// solver (paper Algorithm 2), running every user's device logic in this
// process. For training across real machines see Serve and Join.
func TrainDistributed(users []User, opts ...Option) (*Model, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	comp, err := compress.Parse(o.compressSpec)
	if err != nil {
		return nil, fmt.Errorf("plos: TrainDistributed: %w", err)
	}
	// In-process there is no wire: the trainer simulates the codec-v4
	// roundtrip itself instead of a connection wrapper doing it.
	o.dist.Compress = comp
	data, err := toUserData(users, o.bias)
	if err != nil {
		return nil, err
	}
	m, info, err := core.TrainDistributed(data, o.core, o.dist)
	if err != nil {
		return nil, fmt.Errorf("plos: TrainDistributed: %w", err)
	}
	return &Model{model: m, info: info, bias: o.bias}, nil
}

// TrainAsync fits the objective with the asynchronous distributed solver:
// devices never wait for each other; the consensus refreshes at a partial
// barrier (the paper's §VII future-work scenario, where some users may
// delay their responses arbitrarily long). Accuracy matches the
// synchronous trainers to within solver tolerance.
func TrainAsync(users []User, opts ...Option) (*Model, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	data, err := toUserData(users, o.bias)
	if err != nil {
		return nil, err
	}
	m, info, err := core.TrainAsync(data, o.core, o.async)
	if err != nil {
		return nil, fmt.Errorf("plos: TrainAsync: %w", err)
	}
	return &Model{model: m, info: info, bias: o.bias}, nil
}

// NumUsers returns the number of personalized classifiers in the model.
func (m *Model) NumUsers() int { return m.model.NumUsers() }

// Predict classifies x with user t's personalized hyperplane, returning
// +1 or −1.
func (m *Model) Predict(t int, x []float64) float64 {
	return m.model.PredictUser(t, m.vec(x))
}

// Score returns user t's signed margin on x (distance-scaled confidence).
func (m *Model) Score(t int, x []float64) float64 {
	return m.model.ScoreUser(t, m.vec(x))
}

// PredictGlobal classifies x with the shared hyperplane — the model to
// apply to a brand-new user with no training presence (cold start).
func (m *Model) PredictGlobal(x []float64) float64 {
	return m.model.PredictGlobal(m.vec(x))
}

// Global returns a copy of the shared hyperplane w0 (including the bias
// weight as the last entry when bias is enabled).
func (m *Model) Global() []float64 {
	return append([]float64(nil), m.model.W0...)
}

// Personalized returns a copy of user t's hyperplane.
func (m *Model) Personalized(t int) []float64 {
	return append([]float64(nil), m.model.W[t]...)
}

// Stats reports solver diagnostics from training.
type Stats struct {
	CCCPIterations int
	CCCPConverged  bool
	Objective      float64
	Constraints    int
	// CutRounds is the total number of cutting-plane rounds and
	// QPIterations the cumulative inner QP iterations (centralized solver).
	CutRounds    int
	QPIterations int
	// ADMMIterations counts consensus rounds; the residuals are those of
	// the final round (paper Eq. 24), zero for centralized training.
	ADMMIterations     int
	ADMMPrimalResidual float64
	ADMMDualResidual   float64
	// ObjectiveHistory is the objective after each CCCP iteration.
	ObjectiveHistory []float64
	// CommRawBytes and CommCompBytes account the parameter payloads that
	// crossed the simulated device boundary when TrainDistributed ran with
	// WithCompression: dense-equivalent bytes and codec-v4 encoded bytes.
	// CompressionEFNorm is the L2 norm of the error-feedback residuals
	// left in the quantizers at the end of training. All three are zero
	// when compression is off.
	CommRawBytes      int64
	CommCompBytes     int64
	CompressionEFNorm float64
}

// Stats returns the training diagnostics. Slice fields are copies — mutating
// them does not affect the model.
func (m *Model) Stats() Stats {
	return Stats{
		CCCPIterations:     m.info.CCCPIterations,
		CCCPConverged:      m.info.CCCPConverged,
		Objective:          m.info.Objective,
		Constraints:        m.info.Constraints,
		CutRounds:          m.info.CutRounds,
		QPIterations:       m.info.QPIterations,
		ADMMIterations:     m.info.ADMMIterations,
		ADMMPrimalResidual: m.info.ADMMPrimal,
		ADMMDualResidual:   m.info.ADMMDual,
		ObjectiveHistory:   append([]float64(nil), m.info.ObjectiveHistory...),
		CommRawBytes:       m.info.CommRawBytes,
		CommCompBytes:      m.info.CommCompBytes,
		CompressionEFNorm:  m.info.CompressEFNorm,
	}
}

func (m *Model) vec(x []float64) mat.Vector {
	if m.bias {
		return svm.AugmentBiasVec(mat.Vector(x))
	}
	return mat.Vector(x)
}
