package plos

import (
	"math"
	"math/rand"
	"testing"
)

func rawChannels(n int, seed int64) [][]float64 {
	r := rand.New(rand.NewSource(seed))
	out := make([][]float64, 5)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			out[i][j] = math.Sin(float64(j)/10) + r.NormFloat64()*0.1
		}
	}
	return out
}

func TestExtractWindows(t *testing.T) {
	// 100 Hz for 2272/20 = 113.6 s → 70 windows at paper settings.
	n := 2272 * 5
	feats, err := ExtractWindows(rawChannels(n, 1), SignalConfig{})
	if err != nil {
		t.Fatalf("ExtractWindows: %v", err)
	}
	if len(feats) != 70 {
		t.Errorf("windows = %d, want 70 (the paper's 5-minute recording shape)", len(feats))
	}
	for i, f := range feats {
		if len(f) != FeaturesPerNode {
			t.Fatalf("window %d has %d features, want %d", i, len(f), FeaturesPerNode)
		}
	}
}

func TestExtractWindowsValidation(t *testing.T) {
	if _, err := ExtractWindows(rawChannels(100, 2)[:3], SignalConfig{}); err == nil {
		t.Error("wrong channel count should error")
	}
	ragged := rawChannels(100, 3)
	ragged[4] = ragged[4][:50]
	if _, err := ExtractWindows(ragged, SignalConfig{}); err == nil {
		t.Error("ragged channels should error")
	}
	if _, err := ExtractWindows(rawChannels(100, 4), SignalConfig{SampleHz: 100, TargetHz: 33}); err == nil {
		t.Error("non-divisible rates should error")
	}
}

func TestExtractWindowsSkipNormalize(t *testing.T) {
	channels := rawChannels(1000, 5)
	for i := range channels {
		for j := range channels[i] {
			channels[i][j] += 100 // large offset survives only without normalization
		}
	}
	raw, err := ExtractWindows(channels, SignalConfig{SkipNormalize: true})
	if err != nil {
		t.Fatal(err)
	}
	norm, err := ExtractWindows(channels, SignalConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Feature 0 is the first channel's mean: ~100 raw, ~0 normalized.
	if raw[0][0] < 50 {
		t.Errorf("raw mean = %v, offset lost", raw[0][0])
	}
	if math.Abs(norm[0][0]) > 5 {
		t.Errorf("normalized mean = %v, offset not removed", norm[0][0])
	}
}
